#include "core/facade.h"

#include <pthread.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <ostream>
#include <thread>

#include "common/mathutil.h"
#include "obs/trace_export.h"

namespace hoard {

namespace {

/**
 * The bare singleton, with no side effects beyond construction.  The
 * atfork handlers below must come through here, NOT through
 * global_allocator(): its lazy engine spawn locks the engine's
 * lifecycle mutex, which the forking thread holds from prepare until
 * the after-fork hooks — going through the public accessor inside a
 * fork handler self-deadlocks the fork.
 */
HoardAllocator<NativePolicy>&
global_instance()
{
    // Leaked singleton: outlives all static destructors that might free.
    static auto* instance = [] {
        Config config;
        unsigned hw = std::thread::hardware_concurrency();
        config.heap_count = hw == 0 ? 1 : static_cast<int>(hw);
        // HOARD_HARDENED_FREE=0 restores the trusting free path;
        // HOARD_BAD_FREE=warn counts-and-leaks instead of aborting —
        // both tunable without a rebuild, like HOARD_OBS.
        if (const char* v = std::getenv("HOARD_HARDENED_FREE"))
            config.hardened_free = v[0] != '0';
        if (const char* v = std::getenv("HOARD_BAD_FREE")) {
            if (std::strcmp(v, "warn") == 0)
                config.on_bad_free = Config::BadFreePolicy::warn;
            else if (std::strcmp(v, "fatal") == 0)
                config.on_bad_free = Config::BadFreePolicy::fatal;
        }
        // HOARD_PROFILE_RATE=<mean bytes between samples> arms the
        // sampling heap profiler (docs/PROFILING.md); "1" samples
        // every allocation, unset/0 keeps it off.
        if (const char* v = std::getenv("HOARD_PROFILE_RATE")) {
            char* end = nullptr;
            unsigned long long rate = std::strtoull(v, &end, 10);
            if (end != v)
                config.profile_sample_rate =
                    static_cast<std::size_t>(rate);
        }
        // HOARD_LATENCY=1 arms the per-path latency histograms
        // (obs::latency_env_enabled is also checked in the allocator
        // constructor, so the config knob here is belt-and-braces);
        // HOARD_LATENCY_PERIOD tunes the fast-path timing sample
        // period (1 = time every op), and HOARD_LATENCY_OUTLIER sets
        // the outlier-trace threshold in cycles (docs/OBSERVABILITY.md).
        if (obs::latency_env_enabled())
            config.latency_histograms = true;
        if (const char* v = std::getenv("HOARD_LATENCY_PERIOD")) {
            char* end = nullptr;
            unsigned long long period = std::strtoull(v, &end, 10);
            if (end != v && period >= 1)
                config.latency_sample_period =
                    static_cast<std::uint32_t>(period);
        }
        if (const char* v = std::getenv("HOARD_LATENCY_OUTLIER")) {
            char* end = nullptr;
            unsigned long long cycles = std::strtoull(v, &end, 10);
            if (end != v)
                config.latency_outlier_cycles = cycles;
        }
        // HOARD_SUPERBLOCK_BYTES=<pow2 >= 1024> overrides S without a
        // rebuild (macro_rss runs the shim at 64 KiB so a purged
        // superblock gives back everything but its header page).
        // Invalid values are ignored rather than validated fatally —
        // an env typo must not abort every process on the machine.
        if (const char* v = std::getenv("HOARD_SUPERBLOCK_BYTES")) {
            char* end = nullptr;
            unsigned long long bytes = std::strtoull(v, &end, 10);
            if (end != v && bytes >= 1024 &&
                (bytes & (bytes - 1)) == 0 &&
                config.min_block_bytes < bytes / 4)
                config.superblock_bytes =
                    static_cast<std::size_t>(bytes);
        }
        // HOARD_RSS_TARGET=<bytes> and HOARD_PURGE_AGE=<ns> arm the
        // purge pass (docs/SHIM.md): automatic madvise decommit of
        // idle empty superblocks, by committed-bytes target and/or
        // idle age.  HOARD_PURGE_INTERVAL=<ns> tunes the minimum gap
        // between automatic passes.
        if (const char* v = std::getenv("HOARD_RSS_TARGET")) {
            char* end = nullptr;
            unsigned long long bytes = std::strtoull(v, &end, 10);
            if (end != v)
                config.rss_target_bytes =
                    static_cast<std::size_t>(bytes);
        }
        if (const char* v = std::getenv("HOARD_PURGE_AGE")) {
            char* end = nullptr;
            unsigned long long ticks = std::strtoull(v, &end, 10);
            if (end != v)
                config.purge_age_ticks = ticks;
        }
        if (const char* v = std::getenv("HOARD_PURGE_INTERVAL")) {
            char* end = nullptr;
            unsigned long long ticks = std::strtoull(v, &end, 10);
            if (end != v && ticks >= 1)
                config.purge_interval_ticks = ticks;
        }
        // HOARD_BG=1 arms the asynchronous background engine (bin
        // refill, remote-free settling, span pre-commit, cadenced
        // purge off the foreground path — docs/ARCHITECTURE.md);
        // HOARD_BG_INTERVAL=<ns> tunes the worker's pass cadence.
        // The worker thread itself is spawned lazily below, never
        // here: pthread_create can re-enter malloc (TLS setup on some
        // libcs) and this lambda runs inside the magic static's
        // one-time initializer.
        if (const char* v = std::getenv("HOARD_BG"))
            config.background_engine = v[0] != '0';
        if (const char* v = std::getenv("HOARD_BG_INTERVAL")) {
            char* end = nullptr;
            unsigned long long ticks = std::strtoull(v, &end, 10);
            if (end != v && ticks >= 1)
                config.bg_interval_ticks = ticks;
        }
        // HOARD_TIMELINE=<path> arms the gauge time-series sampler so
        // the LD_PRELOAD shim can dump the v5 timeline there at exit
        // (docs/SHIM.md); the 1 ms default interval keeps a long run's
        // ring meaningful without measurable sampling cost.
        if (const char* v = std::getenv("HOARD_TIMELINE")) {
            if (v[0] != '\0') {
                config.observability = true;
                if (config.obs_sample_interval == 0)
                    config.obs_sample_interval = 1000000;
            }
        }
        return new HoardAllocator<NativePolicy>(config);
    }();
    return *instance;
}

}  // namespace

HoardAllocator<NativePolicy>&
global_allocator()
{
    HoardAllocator<NativePolicy>& instance = global_instance();
    // Lazy engine spawn, outside the magic static's initializer: the
    // first caller to reach here after construction starts the worker
    // (and the child of a fork re-spawns its copy the same way).  The
    // thread_local guard stops the recursion where pthread_create
    // itself mallocs (TLS blocks on some libcs) and re-enters this
    // function on the same thread mid-spawn.
    if (instance.background_armed() &&
        !instance.background_running()) [[unlikely]] {
        static thread_local bool spawning = false;
        if (!spawning) {
            spawning = true;
            instance.start_background();
            spawning = false;
        }
    }
    return instance;
}

void*
hoard_malloc(std::size_t size)
{
    void* p = global_allocator().allocate(size == 0 ? 1 : size);
    if (p == nullptr)
        errno = ENOMEM;  // POSIX requires it; callers test errno
    return p;
}

void
hoard_free(void* p)
{
    global_allocator().deallocate(p);
}

void*
hoard_calloc(std::size_t count, std::size_t size)
{
    if (size != 0 &&
        count > std::numeric_limits<std::size_t>::max() / size) {
        errno = ENOMEM;  // multiplication would overflow
        return nullptr;
    }
    std::size_t bytes = count * size;
    void* p = hoard_malloc(bytes);
    if (p == nullptr)
        return nullptr;  // errno set by hoard_malloc
    // Huge allocations come straight from freshly mapped pages, which
    // the provider guarantees zeroed, and huge spans are never
    // recycled — skipping the memset makes calloc of large buffers
    // O(1).  Small blocks recycle through free lists and magazines,
    // so they must be cleared.
    if (global_allocator().size_classes().class_for(
            bytes == 0 ? 1 : bytes) != SizeClasses::kHuge)
        std::memset(p, 0, bytes);
    return p;
}

void*
hoard_realloc(void* p, std::size_t size)
{
    void* fresh = global_allocator().reallocate(p, size);
    if (fresh == nullptr && size != 0)
        errno = ENOMEM;  // realloc(p, 0) returns nullptr by design
    return fresh;
}

void*
hoard_aligned_alloc(std::size_t align, std::size_t size)
{
    return global_allocator().allocate_aligned(size == 0 ? 1 : size,
                                               align);
}

int
hoard_posix_memalign(void** out, std::size_t align, std::size_t size)
{
    if (out == nullptr)
        return EINVAL;
    if (!detail::is_pow2(align) || align % sizeof(void*) != 0 ||
        align > global_allocator().config().superblock_bytes / 2) {
        return EINVAL;
    }
    void* p = global_allocator().allocate_aligned(size == 0 ? 1 : size,
                                                  align);
    if (p == nullptr)
        return ENOMEM;
    *out = p;
    return 0;
}

std::size_t
hoard_usable_size(const void* p)
{
    return global_allocator().usable_size(p);
}

std::size_t
hoard_release_free_memory()
{
    return global_allocator().release_free_memory();
}

std::size_t
hoard_purge(bool force)
{
    return global_allocator().purge(force);
}

std::size_t
hoard_committed_bytes()
{
    return global_allocator().stats().committed_bytes.current();
}

std::size_t
hoard_reserved_bytes()
{
    return global_allocator().provider().reserved_bytes();
}

std::size_t
hoard_purged_bytes()
{
    return global_allocator().stats().purged_bytes.current();
}

namespace {

/**
 * Fork lock order (outermost first): the magazine liveness registry —
 * exit flushes hold it around pinning and can precede heap locks —
 * then every lock of the global instance (HoardAllocator::
 * prepare_fork documents its internal order).  Parent unlocks in
 * reverse; the child also repairs torn state (child_after_fork).
 */
// All three handlers go through global_instance(): the public
// accessor's lazy engine spawn would try to take the engine lifecycle
// mutex this very thread holds across the fork (see global_instance).
void
fork_prepare()
{
    detail::magazine_registry_prepare_fork();
    global_instance().prepare_fork();
}

void
fork_parent()
{
    global_instance().parent_after_fork();
    detail::magazine_registry_parent_after_fork();
}

void
fork_child()
{
    global_instance().child_after_fork();
    detail::magazine_registry_child_after_fork();
}

}  // namespace

void
hoard_install_atfork()
{
    static const int installed = [] {
        global_allocator();  // construct before any fork can happen
        return pthread_atfork(&fork_prepare, &fork_parent, &fork_child);
    }();
    (void)installed;
}

const detail::AllocatorStats&
hoard_stats()
{
    return global_allocator().stats();
}

obs::AllocatorSnapshot
hoard_snapshot()
{
    return global_allocator().take_snapshot();
}

const obs::EventRecorder*
hoard_event_recorder()
{
    return global_allocator().recorder();
}

std::size_t
hoard_write_chrome_trace(std::ostream& os)
{
    const obs::EventRecorder* recorder = hoard_event_recorder();
    if (recorder == nullptr) {
        static const obs::EventRecorder empty{2};
        obs::write_chrome_trace(os, empty);
        return 0;
    }
    obs::write_chrome_trace(os, *recorder);
    return recorder->collect().size();
}

void
hoard_write_prometheus(std::ostream& os)
{
    obs::write_prometheus(os, hoard_snapshot());
    if (const obs::HeapProfiler* prof = hoard_profiler())
        prof->write_prometheus(os);
}

const obs::HeapProfiler*
hoard_profiler()
{
    return global_allocator().profiler();
}

const obs::LatencyCollector*
hoard_latency()
{
    return global_allocator().latency();
}

bool
hoard_write_heap_profile(std::ostream& os)
{
    const obs::HeapProfiler* prof = hoard_profiler();
    if (prof == nullptr)
        return false;
    prof->write_pprof_profile(os);
    return true;
}

bool
hoard_write_timeline(std::ostream& os)
{
    HoardAllocator<NativePolicy>& allocator = global_allocator();
    if (allocator.sampler() == nullptr)
        return false;
    allocator.sample_now();
    obs::write_timeseries_jsonl(os, *allocator.sampler());
    return true;
}

std::size_t
hoard_write_leak_report(std::ostream& os)
{
    const obs::HeapProfiler* prof = hoard_profiler();
    if (prof == nullptr) {
        os << "hoard leak report: profiler disabled "
              "(set HOARD_PROFILE_RATE)\n";
        return 0;
    }
    return prof->write_leak_report(os);
}

}  // namespace hoard
