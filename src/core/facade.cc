#include "core/facade.h"

#include <cerrno>
#include <cstring>
#include <limits>
#include <ostream>
#include <thread>

#include "common/mathutil.h"
#include "obs/trace_export.h"

namespace hoard {

HoardAllocator<NativePolicy>&
global_allocator()
{
    // Leaked singleton: outlives all static destructors that might free.
    static auto* instance = [] {
        Config config;
        unsigned hw = std::thread::hardware_concurrency();
        config.heap_count = hw == 0 ? 1 : static_cast<int>(hw);
        return new HoardAllocator<NativePolicy>(config);
    }();
    return *instance;
}

void*
hoard_malloc(std::size_t size)
{
    return global_allocator().allocate(size == 0 ? 1 : size);
}

void
hoard_free(void* p)
{
    global_allocator().deallocate(p);
}

void*
hoard_calloc(std::size_t count, std::size_t size)
{
    if (size != 0 &&
        count > std::numeric_limits<std::size_t>::max() / size) {
        return nullptr;  // multiplication would overflow
    }
    std::size_t bytes = count * size;
    void* p = hoard_malloc(bytes);
    if (p != nullptr)
        std::memset(p, 0, bytes);
    return p;
}

void*
hoard_realloc(void* p, std::size_t size)
{
    return global_allocator().reallocate(p, size);
}

void*
hoard_aligned_alloc(std::size_t align, std::size_t size)
{
    return global_allocator().allocate_aligned(size, align);
}

int
hoard_posix_memalign(void** out, std::size_t align, std::size_t size)
{
    if (out == nullptr)
        return EINVAL;
    if (!detail::is_pow2(align) || align % sizeof(void*) != 0 ||
        align > global_allocator().config().superblock_bytes / 2) {
        return EINVAL;
    }
    void* p = global_allocator().allocate_aligned(size == 0 ? 1 : size,
                                                  align);
    if (p == nullptr)
        return ENOMEM;
    *out = p;
    return 0;
}

std::size_t
hoard_usable_size(const void* p)
{
    return global_allocator().usable_size(p);
}

std::size_t
hoard_release_free_memory()
{
    return global_allocator().release_free_memory();
}

const detail::AllocatorStats&
hoard_stats()
{
    return global_allocator().stats();
}

obs::AllocatorSnapshot
hoard_snapshot()
{
    return global_allocator().take_snapshot();
}

const obs::EventRecorder*
hoard_event_recorder()
{
    return global_allocator().recorder();
}

std::size_t
hoard_write_chrome_trace(std::ostream& os)
{
    const obs::EventRecorder* recorder = hoard_event_recorder();
    if (recorder == nullptr) {
        static const obs::EventRecorder empty{2};
        obs::write_chrome_trace(os, empty);
        return 0;
    }
    obs::write_chrome_trace(os, *recorder);
    return recorder->collect().size();
}

void
hoard_write_prometheus(std::ostream& os)
{
    obs::write_prometheus(os, hoard_snapshot());
}

}  // namespace hoard
