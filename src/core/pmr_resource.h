/**
 * @file
 * std::pmr::memory_resource adapter: plugs any hoard::Allocator into
 * the polymorphic-allocator ecosystem (std::pmr::vector, string, map,
 * monotonic chains, ...).  Alignments above the natural 16 bytes are
 * honored through HoardAllocator's aligned path when the backend is a
 * Hoard instance; other backends accept up to their natural alignment
 * and fail loudly beyond it.
 */

#ifndef HOARD_CORE_PMR_RESOURCE_H_
#define HOARD_CORE_PMR_RESOURCE_H_

#include <memory_resource>

#include "common/failure.h"
#include "core/allocator.h"
#include "core/hoard_allocator.h"
#include "policy/native_policy.h"

namespace hoard {

/** memory_resource over a generic Allocator (alignment <= 16). */
class PmrResource : public std::pmr::memory_resource
{
  public:
    explicit PmrResource(Allocator& backend) : backend_(&backend) {}

    Allocator* backend() const { return backend_; }

  protected:
    /**
     * OOM contract: the backends report exhaustion as nullptr (after
     * the Hoard backend's reclaim-and-retry pass); memory_resource's
     * contract is an exception, so the translation happens exactly
     * here.  No resource state changes on the failure path.
     */
    void*
    do_allocate(std::size_t bytes, std::size_t alignment) override
    {
        void* p = allocate_aligned_impl(bytes, alignment);
        if (p == nullptr)
            throw std::bad_alloc();
        return p;
    }

    void
    do_deallocate(void* p, std::size_t /*bytes*/,
                  std::size_t /*alignment*/) override
    {
        backend_->deallocate(p);
    }

    bool
    do_is_equal(const std::pmr::memory_resource& other) const noexcept
        override
    {
        auto* rhs = dynamic_cast<const PmrResource*>(&other);
        return rhs != nullptr && rhs->backend_ == backend_;
    }

    /** Hook for backends with a real aligned path. */
    virtual void*
    allocate_aligned_impl(std::size_t bytes, std::size_t alignment)
    {
        if (alignment > 16) {
            HOARD_FATAL("backend '%s' supports alignment <= 16 via the"
                        " generic PMR adapter (got %zu); use"
                        " HoardPmrResource",
                        backend_->name(), alignment);
        }
        return backend_->allocate(bytes == 0 ? 1 : bytes);
    }

  private:
    Allocator* backend_;
};

/** memory_resource over a native Hoard instance, any alignment. */
class HoardPmrResource final : public PmrResource
{
  public:
    explicit HoardPmrResource(HoardAllocator<NativePolicy>& backend)
        : PmrResource(backend), hoard_(&backend)
    {}

  protected:
    void*
    allocate_aligned_impl(std::size_t bytes,
                          std::size_t alignment) override
    {
        if (alignment <= 16)
            return hoard_->allocate(bytes == 0 ? 1 : bytes);
        return hoard_->allocate_aligned(bytes == 0 ? 1 : bytes,
                                        alignment);
    }

  private:
    HoardAllocator<NativePolicy>* hoard_;
};

}  // namespace hoard

#endif  // HOARD_CORE_PMR_RESOURCE_H_
