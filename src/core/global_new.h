/**
 * @file
 * Global operator new/delete replacement.
 *
 * Including this header in exactly ONE translation unit of a program
 * and defining HOARD_REPLACE_GLOBAL_NEW before the include routes
 * every C++ `new`/`delete` in the process through the global Hoard
 * instance — the "relink your application against Hoard" deployment
 * mode the paper describes for its benchmarks.
 *
 *   #define HOARD_REPLACE_GLOBAL_NEW
 *   #include "core/global_new.h"
 *
 * All replaceable forms are provided (sized, aligned, nothrow,
 * array).  The integration test suite builds one binary this way, so
 * gtest itself, the standard library containers, and the tests all
 * run on Hoard.
 */

#ifndef HOARD_CORE_GLOBAL_NEW_H_
#define HOARD_CORE_GLOBAL_NEW_H_

#include <cstddef>
#include <new>

#include "core/facade.h"
#include "obs/trace_export.h"

#ifdef HOARD_REPLACE_GLOBAL_NEW

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>

namespace hoard {
namespace detail {

/**
 * Exit-time observability dump for whole-process deployments.  When the
 * HOARD_OBS_DUMP environment variable names a path prefix, the process
 * writes <prefix>.snapshot.txt, <prefix>.prom, and <prefix>.trace.json
 * at exit — typically combined with HOARD_OBS=1 so the trace has
 * events.  Registered via a static initializer in every binary that
 * replaces operator new, and inert unless the variable is set.
 */
inline void
obs_dump_at_exit()
{
    const char* prefix = std::getenv("HOARD_OBS_DUMP");
    if (prefix == nullptr)
        return;
    {
        std::ofstream os(std::string(prefix) + ".snapshot.txt");
        obs::write_human(os, hoard_snapshot());
    }
    {
        std::ofstream os(std::string(prefix) + ".prom");
        hoard_write_prometheus(os);
    }
    {
        std::ofstream os(std::string(prefix) + ".trace.json");
        hoard_write_chrome_trace(os);
    }
}

inline struct ObsDumpRegistrar
{
    ObsDumpRegistrar()
    {
        if (std::getenv("HOARD_OBS_DUMP") != nullptr)
            std::atexit(obs_dump_at_exit);
    }
} obs_dump_registrar;

/**
 * Bootstrap arena.  Constructing the global Hoard instance itself
 * allocates (heap tables, size-class tables); with operator new
 * replaced, those allocations would re-enter the instance's own
 * magic-static initializer and deadlock.  A per-thread re-entrancy
 * depth detects construction-time allocations and serves them from
 * this static bump arena instead; frees into the arena's range are
 * no-ops (the metadata lives for the process lifetime anyway).
 */
inline constexpr std::size_t kBootstrapBytes = 1 << 20;

inline unsigned char*
bootstrap_buffer()
{
    alignas(16) static unsigned char buffer[kBootstrapBytes];
    return buffer;
}

inline std::atomic<std::size_t>&
bootstrap_cursor()
{
    static std::atomic<std::size_t> cursor{0};
    return cursor;
}

inline void*
bootstrap_alloc(std::size_t size)
{
    size = (size + 15) & ~std::size_t{15};
    std::size_t offset =
        bootstrap_cursor().fetch_add(size, std::memory_order_relaxed);
    if (offset + size > kBootstrapBytes)
        throw std::bad_alloc();  // enlarge kBootstrapBytes if ever hit
    return bootstrap_buffer() + offset;
}

inline bool
bootstrap_owns(const void* p)
{
    auto addr = reinterpret_cast<std::uintptr_t>(p);
    auto base = reinterpret_cast<std::uintptr_t>(bootstrap_buffer());
    return addr >= base && addr < base + kBootstrapBytes;
}

inline int&
new_depth()
{
    static thread_local int depth = 0;
    return depth;
}

inline void*
global_new_impl(std::size_t size)
{
    if (new_depth() > 0)
        return bootstrap_alloc(size);
    for (;;) {
        ++new_depth();
        void* p = hoard_malloc(size);
        --new_depth();
        if (p != nullptr)
            return p;
        std::new_handler handler = std::get_new_handler();
        if (handler == nullptr)
            throw std::bad_alloc();
        handler();
    }
}

/**
 * Aligned form of the standard allocation loop: like the plain form,
 * a failed attempt consults the installed new_handler and retries
 * until either an attempt succeeds or no handler remains ([new.delete]
 * requires this for every throwing operator new, aligned included).
 */
inline void*
global_new_aligned_impl(std::size_t size, std::size_t alignment)
{
    if (new_depth() > 0) {
        // Bootstrap path: over-allocate and align by hand.
        auto addr = reinterpret_cast<std::uintptr_t>(
            bootstrap_alloc(size + alignment));
        return reinterpret_cast<void*>((addr + alignment - 1) &
                                       ~(alignment - 1));
    }
    for (;;) {
        ++new_depth();
        void* p = hoard_aligned_alloc(alignment, size);
        --new_depth();
        if (p != nullptr)
            return p;
        std::new_handler handler = std::get_new_handler();
        if (handler == nullptr)
            throw std::bad_alloc();
        handler();
    }
}

inline void
global_delete_impl(void* p) noexcept
{
    if (p == nullptr || bootstrap_owns(p))
        return;
    hoard_free(p);
}

}  // namespace detail
}  // namespace hoard

void*
operator new(std::size_t size)
{
    return hoard::detail::global_new_impl(size);
}

void*
operator new[](std::size_t size)
{
    return hoard::detail::global_new_impl(size);
}

void*
operator new(std::size_t size, const std::nothrow_t&) noexcept
{
    try {
        return hoard::detail::global_new_impl(size);
    } catch (...) {
        return nullptr;
    }
}

void*
operator new[](std::size_t size, const std::nothrow_t&) noexcept
{
    return operator new(size, std::nothrow);
}

void*
operator new(std::size_t size, std::align_val_t align)
{
    return hoard::detail::global_new_aligned_impl(
        size, static_cast<std::size_t>(align));
}

void*
operator new[](std::size_t size, std::align_val_t align)
{
    return operator new(size, align);
}

void*
operator new(std::size_t size, std::align_val_t align,
             const std::nothrow_t&) noexcept
{
    try {
        return operator new(size, align);
    } catch (...) {
        return nullptr;
    }
}

void*
operator new[](std::size_t size, std::align_val_t align,
               const std::nothrow_t&) noexcept
{
    return operator new(size, align, std::nothrow);
}

void
operator delete(void* p) noexcept
{
    hoard::detail::global_delete_impl(p);
}

void
operator delete[](void* p) noexcept
{
    hoard::detail::global_delete_impl(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    hoard::detail::global_delete_impl(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    hoard::detail::global_delete_impl(p);
}

void
operator delete(void* p, std::align_val_t) noexcept
{
    hoard::detail::global_delete_impl(p);
}

void
operator delete[](void* p, std::align_val_t) noexcept
{
    hoard::detail::global_delete_impl(p);
}

void
operator delete(void* p, std::size_t, std::align_val_t) noexcept
{
    hoard::detail::global_delete_impl(p);
}

void
operator delete[](void* p, std::size_t, std::align_val_t) noexcept
{
    hoard::detail::global_delete_impl(p);
}

void
operator delete(void* p, const std::nothrow_t&) noexcept
{
    hoard::detail::global_delete_impl(p);
}

void
operator delete[](void* p, const std::nothrow_t&) noexcept
{
    hoard::detail::global_delete_impl(p);
}

void
operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept
{
    hoard::detail::global_delete_impl(p);
}

void
operator delete[](void* p, std::align_val_t,
                  const std::nothrow_t&) noexcept
{
    hoard::detail::global_delete_impl(p);
}

#endif  // HOARD_REPLACE_GLOBAL_NEW

#endif  // HOARD_CORE_GLOBAL_NEW_H_
