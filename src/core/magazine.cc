#include "core/magazine.h"

#include <condition_variable>
#include <cstdlib>
#include <mutex>

namespace hoard {
namespace detail {

namespace {

/** One live-allocator record; malloc'd, freed on unregister. */
struct LiveRec
{
    std::uint64_t id;
    std::uint32_t busy;  ///< exit flushes currently inside flush_fn
    LiveRec* next;
};

/**
 * Registry state.  The mutex and condition variable are leaked-immortal
 * (function-local statics, never destroyed) so exit hooks running
 * during process teardown — thread_local destructors can outlive every
 * other static — always find them alive.
 *
 * Critical sections under this mutex are pointer-ops only: a flush_fn
 * call takes policy mutexes, and under SimPolicy a policy mutex can
 * suspend the calling fiber.  Suspending while holding this process
 * mutex would let a second exiting fiber block the one OS thread the
 * whole simulation runs on — so liveness is instead a busy refcount:
 * the hook pins the record, drops the mutex, flushes, then unpins.
 */
std::mutex&
registry_mutex()
{
    static std::mutex* m = new std::mutex;
    return *m;
}

std::condition_variable&
registry_cv()
{
    static std::condition_variable* cv = new std::condition_variable;
    return *cv;
}

LiveRec* g_live = nullptr;
std::uint64_t g_next_id = 1;

LiveRec*
find_locked(std::uint64_t id)
{
    for (LiveRec* r = g_live; r != nullptr; r = r->next) {
        if (r->id == id)
            return r;
    }
    return nullptr;
}

}  // namespace

MagazineNode*
magazine_node_new(std::uint32_t num_classes)
{
    // One chunk: node header followed by the magazine array.  Plain
    // malloc, not operator new — see the header's memory discipline.
    std::size_t bytes = sizeof(MagazineNode) +
                        static_cast<std::size_t>(num_classes) *
                            sizeof(MagazineNode::Magazine);
    void* mem = std::malloc(bytes);
    if (mem == nullptr)
        return nullptr;
    auto* node = new (mem) MagazineNode();
    node->num_classes = num_classes;
    node->mags = reinterpret_cast<MagazineNode::Magazine*>(node + 1);
    for (std::uint32_t i = 0; i < num_classes; ++i)
        new (&node->mags[i]) MagazineNode::Magazine();
    return node;
}

MagazineRoot*
magazine_root_new()
{
    void* mem = std::malloc(sizeof(MagazineRoot));
    if (mem == nullptr)
        return nullptr;
    return new (mem) MagazineRoot();
}

std::uint64_t
magazine_register_allocator()
{
    auto* rec = static_cast<LiveRec*>(std::malloc(sizeof(LiveRec)));
    if (rec == nullptr)
        return 0;  // caller treats 0 as "caching unavailable"
    std::lock_guard<std::mutex> guard(registry_mutex());
    rec->id = g_next_id++;
    rec->busy = 0;
    rec->next = g_live;
    g_live = rec;
    return rec->id;
}

void
magazine_unregister_allocator(std::uint64_t id)
{
    if (id == 0)
        return;
    std::unique_lock<std::mutex> lock(registry_mutex());
    for (LiveRec** p = &g_live; *p != nullptr; p = &(*p)->next) {
        if ((*p)->id == id) {
            LiveRec* dead = *p;
            *p = dead->next;
            // Unlinked: no new exit flush can pin this allocator.  An
            // exit flush already inside flush_fn still holds a pin;
            // wait it out before letting the destructor proceed.
            registry_cv().wait(lock,
                               [dead] { return dead->busy == 0; });
            std::free(dead);
            return;
        }
    }
}

void
magazine_registry_prepare_fork()
{
    registry_mutex().lock();
}

void
magazine_registry_parent_after_fork()
{
    registry_mutex().unlock();
}

void
magazine_registry_child_after_fork()
{
    // The forking thread owns the mutex (prepare handler); holding it
    // across fork() guarantees no record was mid-mutation.  Exit
    // flushes that were pinned in the parent belong to threads that do
    // not exist in the child — drop their pins so unregister never
    // waits on them.
    for (LiveRec* r = g_live; r != nullptr; r = r->next)
        r->busy = 0;
    registry_mutex().unlock();
}

void
magazine_thread_exit(void* root_ptr)
{
    if (root_ptr == nullptr)
        return;
    auto* root = static_cast<MagazineRoot*>(root_ptr);
    for (MagazineNode* node = root->nodes; node != nullptr;
         node = node->next_in_thread) {
        if (node->flush_fn == nullptr)
            continue;
        LiveRec* rec;
        {
            std::lock_guard<std::mutex> guard(registry_mutex());
            rec = find_locked(node->allocator_id);
            if (rec == nullptr)
                continue;  // allocator already destroyed; just free
            ++rec->busy;
        }
        // The pin (busy > 0) is what keeps `node->allocator` alive
        // here: a racing destructor waits in unregister until it drops.
        node->flush_fn(node->allocator, node);
        {
            std::lock_guard<std::mutex> guard(registry_mutex());
            --rec->busy;
        }
        registry_cv().notify_all();
    }
    MagazineNode* node = root->nodes;
    while (node != nullptr) {
        MagazineNode* next = node->next_in_thread;
        std::free(node);
        node = next;
    }
    std::free(root);
}

}  // namespace detail
}  // namespace hoard
