#include "core/size_classes.h"

#include <cmath>

#include "common/failure.h"
#include "common/mathutil.h"

namespace hoard {

SizeClasses::SizeClasses(const Config& config, std::size_t payload_bytes)
{
    const std::size_t max_block = payload_bytes / 2;
    HOARD_CHECK(config.min_block_bytes <= max_block);

    std::size_t size = config.min_block_bytes;
    while (size <= max_block) {
        sizes_.push_back(size);
        // Grow geometrically, rounded up to the class alignment; always
        // advance by at least one alignment unit so classes are distinct.
        std::size_t align = size < 16 ? 8 : 16;
        auto grown = static_cast<std::size_t>(
            std::ceil(static_cast<double>(size) * config.size_class_base));
        std::size_t next = detail::align_up(grown, align);
        if (next <= size)
            next = size + align;
        size = next;
    }
    HOARD_CHECK(!sizes_.empty());

    // Direct-mapped lookup: slot i covers sizes ((i-1)*8, i*8].
    std::size_t slots = sizes_.back() / kLutGranularity + 1;
    lut_.assign(slots, kHuge);
    std::size_t cls = 0;
    for (std::size_t slot = 0; slot < slots; ++slot) {
        std::size_t covered = slot * kLutGranularity;
        while (cls < sizes_.size() && sizes_[cls] < covered)
            ++cls;
        HOARD_CHECK(cls < sizes_.size());
        lut_[slot] = static_cast<std::int16_t>(cls);
    }
}

}  // namespace hoard
