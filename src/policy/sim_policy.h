/**
 * @file
 * Simulated execution policy: the same allocator code, but mutexes are
 * virtual-time mutexes and every cost hook charges cycles on the current
 * Machine.  Instantiating HoardAllocator<SimPolicy> is what turns the
 * native allocator into a measurable subject on the simulated
 * multiprocessor.
 */

#ifndef HOARD_POLICY_SIM_POLICY_H_
#define HOARD_POLICY_SIM_POLICY_H_

#include <cstddef>
#include <cstdint>

#include "obs/gating.h"
#include "policy/cost_kind.h"
#include "sim/machine.h"
#include "sim/virtual_event.h"
#include "sim/virtual_mutex.h"

namespace hoard {

/** Execution policy for simulated threads. @see sim::Machine */
struct SimPolicy
{
    using Mutex = sim::VirtualMutex;
    using Event = sim::VirtualEvent;

    /** @see NativePolicy::kObsEnabled */
    static constexpr bool kObsEnabled = obs::kCompiledIn;

    /** @see NativePolicy::kProfilerEnabled */
    static constexpr bool kProfilerEnabled = obs::kProfilerCompiledIn;

    /**
     * @see NativePolicy::kBackgroundThread — the sim worker is a
     * cooperative fiber the harness spawns before Machine::run(), never
     * an OS thread, so scheduling stays deterministic.
     */
    static constexpr bool kBackgroundThread = false;

    /**
     * Deterministic "backtrace" for profiler tests: frame 0 is the
     * fiber's site token (set by the workload via
     * Machine::set_profile_site), frame 1 tags the logical thread.
     * Two identical runs therefore produce bit-identical site tables —
     * the sim analogue of a real stack walk.
     */
    static int
    profile_backtrace(std::uintptr_t* frames, int max)
    {
        sim::Machine* m = sim::Machine::current();
        int n = 0;
        if (max >= 1)
            frames[n++] = static_cast<std::uintptr_t>(m->profile_site());
        if (max >= 2) {
            frames[n++] = static_cast<std::uintptr_t>(0x51700000u) |
                          static_cast<std::uintptr_t>(m->current_tid());
        }
        return n;
    }

    /**
     * Timestamp for trace events and wait timing: the calling simulated
     * thread's virtual clock, in cycles.  Only valid inside a run.
     */
    static std::uint64_t
    timestamp()
    {
        return sim::Machine::current()->current_clock();
    }

    /**
     * Cycle clock for latency histograms: virtual time, same as
     * timestamp().  Identical runs read identical clocks, which is
     * what makes sim latency histograms byte-identical on replay.
     */
    static std::uint64_t
    cycle_timestamp()
    {
        return sim::Machine::current()->current_clock();
    }

    static void
    work(std::uint64_t cycles)
    {
        sim::Machine::current()->charge(cycles);
    }

    static void
    work(CostKind kind)
    {
        sim::Machine* m = sim::Machine::current();
        const sim::CostModel& c = m->costs();
        std::uint64_t cycles = 0;
        switch (kind) {
          case CostKind::malloc_base:
            cycles = c.malloc_base;
            break;
          case CostKind::free_base:
            cycles = c.free_base;
            break;
          case CostKind::list_op:
            cycles = c.list_op;
            break;
          case CostKind::superblock_init:
            cycles = c.superblock_init;
            break;
          case CostKind::os_map:
            cycles = c.os_map;
            break;
          case CostKind::os_commit:
            cycles = c.os_commit;
            break;
          case CostKind::os_purge:
            cycles = c.os_purge;
            break;
          case CostKind::transfer:
            cycles = c.transfer;
            break;
          case CostKind::bg_wakeup:
            cycles = c.bg_wakeup;
            break;
        }
        m->charge(cycles);
    }

    static void
    touch(const void* p, std::size_t bytes, bool write)
    {
        sim::Machine::current()->touch(p, bytes, write);
    }

    static int
    thread_index()
    {
        return sim::Machine::current()->current_tid();
    }

    static void
    rebind_thread_index(int idx)
    {
        sim::Machine::current()->rebind_tid(idx);
    }

    /** @see NativePolicy::thread_cache_slot — one slot per *fiber*. */
    static void*&
    thread_cache_slot()
    {
        return sim::Machine::current()->thread_cache_slot();
    }

    /** @see NativePolicy::set_thread_exit_hook */
    static void
    set_thread_exit_hook(void (*hook)(void*))
    {
        sim::Machine::set_thread_exit_hook(hook);
    }
};

}  // namespace hoard

#endif  // HOARD_POLICY_SIM_POLICY_H_
