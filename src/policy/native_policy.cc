#include "policy/native_policy.h"

#include <atomic>

namespace hoard {

namespace {

std::atomic<int> g_next_index{0};
thread_local int t_index = -1;

}  // namespace

int
ThreadRegistry::index()
{
    if (t_index < 0)
        t_index = g_next_index.fetch_add(1, std::memory_order_relaxed);
    return t_index;
}

void
ThreadRegistry::rebind(int index)
{
    t_index = index;
    // Keep count() an upper bound over every index ever bound.
    int seen = g_next_index.load(std::memory_order_relaxed);
    while (index >= seen &&
           !g_next_index.compare_exchange_weak(seen, index + 1,
                                               std::memory_order_relaxed)) {
    }
}

int
ThreadRegistry::count()
{
    return g_next_index.load(std::memory_order_relaxed);
}

}  // namespace hoard
