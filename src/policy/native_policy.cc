#include "policy/native_policy.h"

#include <atomic>

namespace hoard {

namespace {

std::atomic<int> g_next_index{0};
thread_local int t_index = -1;

std::atomic<void (*)(void*)> g_thread_exit_hook{nullptr};

/**
 * Holds the per-thread cache slot and runs the exit hook from its
 * destructor, which the runtime calls at OS-thread exit (after the
 * thread body returns, before join() unblocks — so a post-join flush
 * observes the hook's effects).
 */
struct CacheSlotHolder
{
    void* slot = nullptr;

    ~CacheSlotHolder()
    {
        void (*hook)(void*) =
            g_thread_exit_hook.load(std::memory_order_acquire);
        if (slot != nullptr && hook != nullptr)
            hook(slot);
        slot = nullptr;
    }
};

thread_local CacheSlotHolder t_cache_slot;

}  // namespace

void*&
NativePolicy::thread_cache_slot()
{
    return t_cache_slot.slot;
}

void
NativePolicy::set_thread_exit_hook(void (*hook)(void*))
{
    g_thread_exit_hook.store(hook, std::memory_order_release);
}

int
ThreadRegistry::index()
{
    if (t_index < 0)
        t_index = g_next_index.fetch_add(1, std::memory_order_relaxed);
    return t_index;
}

void
ThreadRegistry::rebind(int index)
{
    t_index = index;
    // Keep count() an upper bound over every index ever bound.
    int seen = g_next_index.load(std::memory_order_relaxed);
    while (index >= seen &&
           !g_next_index.compare_exchange_weak(seen, index + 1,
                                               std::memory_order_relaxed)) {
    }
}

int
ThreadRegistry::count()
{
    return g_next_index.load(std::memory_order_relaxed);
}

}  // namespace hoard
