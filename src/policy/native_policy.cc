#include "policy/native_policy.h"

#include <atomic>
#include <cstdint>

namespace hoard {

namespace {

std::atomic<int> g_next_index{0};

std::atomic<void (*)(void*)> g_thread_exit_hook{nullptr};

/**
 * Holds the per-thread cache slot and runs the exit hook from its
 * destructor, which the runtime calls at OS-thread exit (after the
 * thread body returns, before join() unblocks — so a post-join flush
 * observes the hook's effects).
 */
struct CacheSlotHolder
{
    void* slot = nullptr;

    ~CacheSlotHolder()
    {
        void (*hook)(void*) =
            g_thread_exit_hook.load(std::memory_order_acquire);
        if (slot != nullptr && hook != nullptr)
            hook(slot);
        slot = nullptr;
    }
};

thread_local CacheSlotHolder t_cache_slot;

}  // namespace

void*&
NativePolicy::thread_cache_slot()
{
    return t_cache_slot.slot;
}

void
NativePolicy::set_thread_exit_hook(void (*hook)(void*))
{
    g_thread_exit_hook.store(hook, std::memory_order_release);
}

__attribute__((noinline)) int
NativePolicy::profile_backtrace(std::uintptr_t* frames, int max)
{
    // Frame layout with -fno-omit-frame-pointer: *fp is the caller's
    // fp, *(fp+1) the return address.  Every step is sanity-checked —
    // the chain ends at a foreign frame (ld.so, a thread trampoline,
    // JIT code) whose saved "fp" is garbage, and a wild read here
    // would crash the very tool meant to diagnose crashes.
    struct Frame
    {
        Frame* next;
        std::uintptr_t ret;
    };

    const Frame* fp =
        static_cast<const Frame*>(__builtin_frame_address(0));
    int n = 0;
    // 1 MiB cap per step: stack frames larger than that are not real,
    // they are a corrupt chain about to walk off the stack.
    constexpr std::uintptr_t kMaxStep = std::uintptr_t{1} << 20;
    while (fp != nullptr && n < max) {
        const std::uintptr_t addr = reinterpret_cast<std::uintptr_t>(fp);
        if (addr % alignof(void*) != 0)
            break;
        const std::uintptr_t ret = fp->ret;
        // A return address must look like code: the low 64 KiB is
        // never mapped (mmap_min_addr) and x86-64/AArch64 user space
        // tops out at 2^48.  Foreign frames whose "ret" slot holds
        // loop counters or flags fail this and end the walk — without
        // it, that garbage varies per call and every sample mints a
        // brand-new site until the table fills.
        if (ret < 0x10000 || ret >= (std::uintptr_t{1} << 48))
            break;
        frames[n++] = ret;
        const Frame* next = fp->next;
        const std::uintptr_t next_addr =
            reinterpret_cast<std::uintptr_t>(next);
        // Stacks grow down, so the caller's frame sits strictly above.
        if (next_addr <= addr || next_addr - addr > kMaxStep)
            break;
        fp = next;
    }
    return n;
}

int
ThreadRegistry::assign_index()
{
    t_index = g_next_index.fetch_add(1, std::memory_order_relaxed);
    return t_index;
}

void
ThreadRegistry::rebind(int index)
{
    t_index = index;
    // Keep count() an upper bound over every index ever bound.
    int seen = g_next_index.load(std::memory_order_relaxed);
    while (index >= seen &&
           !g_next_index.compare_exchange_weak(seen, index + 1,
                                               std::memory_order_relaxed)) {
    }
}

int
ThreadRegistry::count()
{
    return g_next_index.load(std::memory_order_relaxed);
}

}  // namespace hoard
