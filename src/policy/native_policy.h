/**
 * @file
 * Native execution policy: real threads, real mutexes, no cost modeling.
 *
 * The allocator and workload templates are instantiated against a Policy
 * that supplies the mutex type, the thread-to-index mapping, and the cost
 * hooks.  Under NativePolicy the hooks vanish, so the native build is a
 * genuine thread-safe allocator with zero simulation overhead.
 */

#ifndef HOARD_POLICY_NATIVE_POLICY_H_
#define HOARD_POLICY_NATIVE_POLICY_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "obs/gating.h"
#include "policy/cost_kind.h"

namespace hoard {

/**
 * Registry mapping OS threads to small dense indices.  Indices are
 * assigned on first use and may be rebound (thread churn in workloads).
 */
class ThreadRegistry
{
  public:
    /**
     * Index of the calling thread, assigning one if needed.  The hot
     * path — one TLS load and a predicted branch — is inline because
     * the heap profiler's armed sampling countdown runs it on every
     * allocation; only first-use assignment leaves the header.
     */
    static int
    index()
    {
        const int idx = t_index;
        if (idx >= 0) [[likely]]
            return idx;
        return assign_index();
    }

    /** Rebinds the calling thread's index (models a fresh thread). */
    static void rebind(int index);

    /** Highest index assigned so far plus one. */
    static int count();

  private:
    static int assign_index();

    static inline thread_local int t_index = -1;
};

/** One-shot broadcast event for real threads. */
class NativeEvent
{
  public:
    void
    wait()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return set_; });
    }

    void
    signal()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            set_ = true;
        }
        cv_.notify_all();
    }

    bool
    is_set() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return set_;
    }

  private:
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool set_ = false;
};

/** Execution policy for real threads. */
struct NativePolicy
{
    using Mutex = std::mutex;
    using Event = NativeEvent;

    /**
     * Whether observability instrumentation is compiled into allocators
     * instantiated with this policy (HOARD_OBS CMake option).  A policy
     * subclass can override it to false to stamp out an uninstrumented
     * allocator in an instrumented build (bench/micro_obs_overhead.cc).
     */
    static constexpr bool kObsEnabled = obs::kCompiledIn;

    /**
     * Whether the sampling heap profiler is compiled into allocators
     * instantiated with this policy (HOARD_PROFILER CMake option).
     * Overridable to false for uninstrumented bench baselines, exactly
     * like kObsEnabled.
     */
    static constexpr bool kProfilerEnabled = obs::kProfilerCompiledIn;

    /**
     * Whether the background engine (core/background.h) may spawn a
     * real helper thread when armed.  Under SimPolicy this is false:
     * fibers must be spawned on the Machine before run(), so the sim
     * worker is a cooperative fiber body the harness schedules itself
     * (HoardAllocator::bg_worker_sim), keeping replays byte-identical.
     */
    static constexpr bool kBackgroundThread = true;

    /**
     * Captures the calling thread's backtrace into @p frames (at most
     * @p max entries) by walking the frame-pointer chain; returns the
     * number captured.  No allocation, no libunwind — the tree builds
     * with -fno-omit-frame-pointer precisely so this stays a dozen
     * loads.  noinline so the walk's own frame is a stable first entry
     * to skip.  Defined out of line (native_policy.cc).
     */
    static int profile_backtrace(std::uintptr_t* frames, int max);

    /** Timestamp for trace events and wait timing: steady-clock ns. */
    static std::uint64_t
    timestamp()
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

    /**
     * Cheap cycle counter for latency histograms (obs/latency.h): the
     * raw TSC on x86-64, the virtual counter on aarch64 — a few cycles
     * either way, versus the vDSO call behind timestamp().  Unserialized
     * by design: a stray out-of-order read costs a bucket of noise,
     * serializing would cost more than some paths being measured.
     * Monotonic per thread on every machine this tree targets
     * (constant_tsc is assumed, as every modern x86 provides).
     */
    static std::uint64_t
    cycle_timestamp()
    {
#if defined(__x86_64__) || defined(__i386__)
        return __builtin_ia32_rdtsc();
#elif defined(__aarch64__)
        std::uint64_t cnt;
        asm volatile("mrs %0, cntvct_el0" : "=r"(cnt));
        return cnt;
#else
        return timestamp();
#endif
    }

    /** Computation charge: free under native execution. */
    static void work(std::uint64_t /* cycles */) {}

    /** Symbolic allocator-event charge: free under native execution. */
    static void work(CostKind /* kind */) {}

    /** Memory-access charge: free under native execution. */
    static void touch(const void* /* p */, std::size_t /* bytes */,
                      bool /* write */)
    {}

    static int thread_index() { return ThreadRegistry::index(); }
    static void rebind_thread_index(int idx) { ThreadRegistry::rebind(idx); }

    /**
     * The calling logical thread's opaque cache slot (the thread-
     * magazine root, core/magazine.h).  One slot per OS thread here;
     * under SimPolicy one per fiber — which is why the allocator goes
     * through the policy instead of declaring a thread_local.
     */
    static void*& thread_cache_slot();

    /**
     * Installs the process-wide hook invoked with a thread's non-null
     * cache slot when that logical thread exits (here: from a
     * thread_local destructor).  Idempotent; last writer wins.
     */
    static void set_thread_exit_hook(void (*hook)(void*));
};

}  // namespace hoard

#endif  // HOARD_POLICY_NATIVE_POLICY_H_
