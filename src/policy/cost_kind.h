/**
 * @file
 * Symbolic cost events charged by the allocator through its execution
 * policy.  NativePolicy ignores them; SimPolicy maps each to the running
 * Machine's CostModel.  Keeping the mapping symbolic lets one allocator
 * body serve both builds without embedding cycle numbers.
 */

#ifndef HOARD_POLICY_COST_KIND_H_
#define HOARD_POLICY_COST_KIND_H_

namespace hoard {

/** Allocator-internal events with modeled costs. @see sim::CostModel */
enum class CostKind
{
    malloc_base,      ///< size-class lookup + fast-path bookkeeping
    free_base,        ///< superblock mask + fast-path bookkeeping
    list_op,          ///< one fullness-group probe or relink
    superblock_init,  ///< formatting a fresh/recycled superblock
    os_map,           ///< a page-provider round trip
    os_commit,        ///< committing (or reviving) a decommitted span
    os_purge,         ///< decommitting a span (madvise)
    transfer,         ///< moving a superblock between heaps
    bg_wakeup,        ///< one background-worker pass (scan overhead)
};

}  // namespace hoard

#endif  // HOARD_POLICY_COST_KIND_H_
