#include "workloads/synthetic.h"

#include <algorithm>
#include <map>
#include <vector>

#include "common/failure.h"

namespace hoard {
namespace workloads {

std::size_t
synthetic_size(detail::Rng& rng, const SyntheticParams& params)
{
    switch (params.size_dist) {
      case SizeDist::uniform:
        return rng.range(params.min_size, params.max_size);
      case SizeDist::geometric: {
        std::size_t size = params.min_size;
        while (size * 2 <= params.max_size && rng.chance(0.5))
            size *= 2;
        // Jitter within the octave so size classes are all exercised.
        return rng.range(size, std::min(size * 2 - 1, params.max_size));
      }
      case SizeDist::bimodal:
        if (rng.chance(0.9)) {
            return rng.range(params.min_size,
                             std::min(params.min_size * 2,
                                      params.max_size));
        }
        return rng.range(std::max(params.max_size / 2, params.min_size),
                         params.max_size);
    }
    HOARD_PANIC("unknown size distribution");
}

int
synthetic_lifetime(detail::Rng& rng, const SyntheticParams& params,
                   int op_index)
{
    switch (params.lifetime_dist) {
      case LifetimeDist::exponential: {
        // Geometric approximation of an exponential with the given
        // mean: keep flipping a (1 - 1/mean) coin.
        double survive =
            1.0 - 1.0 / static_cast<double>(params.mean_lifetime);
        int life = 1;
        while (rng.chance(survive) &&
               life < 50 * params.mean_lifetime)
            ++life;
        return life;
      }
      case LifetimeDist::uniform:
        return static_cast<int>(rng.range(
            1, static_cast<std::uint64_t>(2 * params.mean_lifetime)));
      case LifetimeDist::phased: {
        // Dies at the end of its birth phase.
        int phase_end = ((op_index / params.phase_length) + 1) *
                        params.phase_length;
        return phase_end - op_index;
      }
    }
    HOARD_PANIC("unknown lifetime distribution");
}

Trace
generate_synthetic_trace(const SyntheticParams& params)
{
    detail::Rng rng(params.seed);
    Trace trace;

    // Death schedule: op index -> objects to free at that index.
    std::map<int, std::vector<TraceOp>> deaths;

    for (int op = 0; op < params.operations; ++op) {
        // Emit any frees scheduled for this point first.
        auto due = deaths.find(op);
        if (due != deaths.end()) {
            for (TraceOp& free_op : due->second)
                trace.append(free_op);
            deaths.erase(due);
        }

        auto tid =
            static_cast<std::int32_t>(rng.below(
                static_cast<std::uint64_t>(params.nthreads)));
        auto object = static_cast<std::uint64_t>(op);
        auto size = static_cast<std::uint64_t>(
            synthetic_size(rng, params));
        trace.append({TraceOp::Kind::alloc, tid, object, size});

        int death = op + synthetic_lifetime(rng, params, op);
        std::int32_t freeing_tid = tid;
        if (params.cross_thread_free_fraction > 0.0 &&
            rng.chance(params.cross_thread_free_fraction)) {
            freeing_tid = static_cast<std::int32_t>(rng.below(
                static_cast<std::uint64_t>(params.nthreads)));
        }
        deaths[death].push_back(
            {TraceOp::Kind::free_op, freeing_tid, object, 0});
    }

    // Flush everything still alive, in death order.
    for (auto& [when, ops] : deaths) {
        for (TraceOp& free_op : ops)
            trace.append(free_op);
    }
    return trace;
}

}  // namespace workloads
}  // namespace hoard
