/**
 * @file
 * threadtest (paper Table 2): t threads repeatedly allocate and then
 * free N/t objects of one small size.  The classic scalability
 * stress — nearly all time is malloc/free, so a serialized allocator
 * shows immediately.
 */

#ifndef HOARD_WORKLOADS_THREADTEST_H_
#define HOARD_WORKLOADS_THREADTEST_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/allocator.h"
#include "workloads/workload_util.h"

namespace hoard {
namespace workloads {

/** Parameters for threadtest. */
struct ThreadtestParams
{
    int nthreads = 4;
    int iterations = 20;           ///< alloc/free rounds
    int total_objects = 20000;     ///< split across threads
    std::size_t object_bytes = 8;  ///< the paper uses 8-byte objects
    std::uint64_t work_per_object = 0;  ///< extra compute between ops
};

/** Body run by thread @p tid (0-based). */
template <typename Policy>
void
threadtest_thread(Allocator& allocator, const ThreadtestParams& params,
                  int tid)
{
    Policy::rebind_thread_index(tid);
    const int per_thread = params.total_objects / params.nthreads;
    std::vector<void*> objects(static_cast<std::size_t>(per_thread));

    for (int iter = 0; iter < params.iterations; ++iter) {
        for (int i = 0; i < per_thread; ++i) {
            // Under memory pressure (fault-injecting providers, RSS
            // caps) allocate may return nullptr; the workload degrades
            // by skipping the object — deallocate(nullptr) is a no-op.
            void* p = allocator.allocate(params.object_bytes);
            if (p != nullptr)
                write_memory<Policy>(p, params.object_bytes);
            if (params.work_per_object != 0)
                Policy::work(params.work_per_object);
            objects[static_cast<std::size_t>(i)] = p;
        }
        for (int i = 0; i < per_thread; ++i)
            allocator.deallocate(objects[static_cast<std::size_t>(i)]);
    }
}

}  // namespace workloads
}  // namespace hoard

#endif  // HOARD_WORKLOADS_THREADTEST_H_
