/**
 * @file
 * Ready-made SimPolicy-bound workload bodies for the speedup harness.
 * Each builder captures the workload parameters and adapts nthreads to
 * the machine size the harness chooses, so one builder serves every
 * (allocator, P) cell of a figure.  Shared by the fig_* benches and the
 * integration tests that guard the headline results.
 */

#ifndef HOARD_WORKLOADS_SIM_BODIES_H_
#define HOARD_WORKLOADS_SIM_BODIES_H_

#include <memory>

#include "metrics/speedup.h"
#include "policy/sim_policy.h"
#include "workloads/barneshut.h"
#include "workloads/bemsim.h"
#include "workloads/false_sharing.h"
#include "workloads/larson.h"
#include "workloads/shbench.h"
#include "workloads/threadtest.h"

namespace hoard {
namespace workloads {

inline metrics::SimWorkloadBody
threadtest_body(ThreadtestParams params)
{
    return [params](Allocator& allocator, int tid, int nthreads) {
        ThreadtestParams p = params;
        p.nthreads = nthreads;
        threadtest_thread<SimPolicy>(allocator, p, tid);
    };
}

inline metrics::SimWorkloadBody
shbench_body(ShbenchParams params)
{
    return [params](Allocator& allocator, int tid, int nthreads) {
        ShbenchParams p = params;
        p.nthreads = nthreads;
        // Fixed total work: scale per-thread operations down with P.
        p.operations = params.operations / nthreads;
        shbench_thread<SimPolicy>(allocator, p, tid);
    };
}

inline metrics::SimWorkloadBody
larson_body(LarsonParams params)
{
    return [params](Allocator& allocator, int tid, int nthreads) {
        LarsonParams p = params;
        p.nthreads = nthreads;
        // Fixed total replacements across the machine.
        p.rounds_per_epoch = params.rounds_per_epoch / nthreads;
        larson_thread<SimPolicy>(allocator, p, tid);
    };
}

inline metrics::SimWorkloadBody
active_false_body(FalseSharingParams params)
{
    return [params](Allocator& allocator, int tid, int nthreads) {
        FalseSharingParams p = params;
        p.nthreads = nthreads;
        active_false_thread<SimPolicy>(allocator, p, tid);
    };
}

inline metrics::SimWorkloadBody
passive_false_body(FalseSharingParams params)
{
    // One shared state per run cell: the harness runs cells strictly
    // one machine at a time, so recreate state when a new run starts
    // (detected by tid 0 arriving with a consumed state).
    auto state = std::make_shared<
        std::unique_ptr<PassiveFalseState<SimPolicy>>>();
    return [params, state](Allocator& allocator, int tid, int nthreads) {
        FalseSharingParams p = params;
        p.nthreads = nthreads;
        if (tid == 0) {
            *state = std::make_unique<PassiveFalseState<SimPolicy>>(
                nthreads);
        }
        passive_false_thread<SimPolicy>(allocator, p, **state, tid);
    };
}

inline metrics::SimWorkloadBody
bemsim_body(BemSimParams params)
{
    return [params](Allocator& allocator, int tid, int nthreads) {
        BemSimParams p = params;
        p.nthreads = nthreads;  // panels are taken round-robin
        bemsim_thread<SimPolicy>(allocator, p, tid);
    };
}

inline metrics::SimWorkloadBody
barneshut_body(BarnesHutParams params)
{
    return [params](Allocator& allocator, int tid, int nthreads) {
        BarnesHutParams p = params;
        p.nthreads = nthreads;  // subsystems are taken round-robin
        barneshut_thread<SimPolicy>(allocator, p, tid);
    };
}

}  // namespace workloads
}  // namespace hoard

#endif  // HOARD_WORKLOADS_SIM_BODIES_H_
