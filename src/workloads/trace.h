/**
 * @file
 * Allocation-trace recording and replay.
 *
 * The fragmentation studies the paper builds on (Wilson/Johnstone)
 * work from allocation traces; this module provides the same tooling
 * for this repository: wrap any allocator in a TraceRecorder while a
 * workload runs, serialize the (tid, alloc/free, size) stream, and
 * replay it later against any allocator — deterministically, since the
 * replayer reproduces the logical-thread interleaving via rebinding.
 *
 * Uses: regression corpora (a trace captured once pins an allocator
 * behavior forever), apples-to-apples fragmentation comparisons, and
 * importing external workload traces into the bench harness.
 */

#ifndef HOARD_WORKLOADS_TRACE_H_
#define HOARD_WORKLOADS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <istream>
#include <mutex>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "common/failure.h"
#include "common/stats.h"
#include "core/allocator.h"

namespace hoard {
namespace workloads {

/** One recorded operation. */
struct TraceOp
{
    enum class Kind : std::uint8_t { alloc, free_op };

    Kind kind;
    std::int32_t tid;       ///< logical thread performing the op
    std::uint64_t object;   ///< object identity (stable across replay)
    std::uint64_t size;     ///< request size (alloc ops only)
};

/** A recorded allocation trace. */
class Trace
{
  public:
    void
    append(TraceOp op)
    {
        ops_.push_back(op);
    }

    const std::vector<TraceOp>& ops() const { return ops_; }
    std::size_t size() const { return ops_.size(); }
    bool empty() const { return ops_.empty(); }

    /** Writes a line-oriented text form ("a tid id size" / "f tid id"). */
    void save(std::ostream& os) const;

    /** Parses the text form; aborts on malformed input. */
    static Trace load(std::istream& is);

    /** Max simultaneously-live bytes (the fragmentation denominator). */
    std::uint64_t max_live_bytes() const;

    bool
    operator==(const Trace& other) const
    {
        if (ops_.size() != other.ops_.size())
            return false;
        for (std::size_t i = 0; i < ops_.size(); ++i) {
            const TraceOp& a = ops_[i];
            const TraceOp& b = other.ops_[i];
            if (a.kind != b.kind || a.tid != b.tid ||
                a.object != b.object || a.size != b.size)
                return false;
        }
        return true;
    }

  private:
    std::vector<TraceOp> ops_;
};

/**
 * Allocator wrapper that records every operation into a Trace.
 * Thread-safe; the recorded order is the serialization order of the
 * recorder's lock, which for single-threaded capture (the rebinding
 * drivers) is exact.
 */
class TraceRecorder final : public Allocator
{
  public:
    TraceRecorder(Allocator& inner, Trace& trace)
        : inner_(inner), trace_(trace)
    {}

    void* allocate(std::size_t size) override;
    void deallocate(void* p) override;

    std::size_t
    usable_size(const void* p) const override
    {
        return inner_.usable_size(p);
    }

    const detail::AllocatorStats&
    stats() const override
    {
        return inner_.stats();
    }

    const char* name() const override { return "trace-recorder"; }

  private:
    Allocator& inner_;
    Trace& trace_;
    std::mutex mutex_;
    std::unordered_map<const void*, std::uint64_t> object_ids_;
    std::uint64_t next_id_ = 0;
};

/** Statistics returned by replay(). */
struct ReplayResult
{
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t peak_held_bytes = 0;
    std::uint64_t peak_in_use_bytes = 0;
};

/**
 * Replays @p trace against @p allocator on the calling thread,
 * reproducing each op's logical thread via Policy rebinding (the same
 * device the producer-consumer workload uses; allocator-visible
 * behavior is identical to the original interleaving).  Policy is a
 * template parameter so traces replay both natively and under the
 * simulator.
 */
template <typename Policy>
ReplayResult
replay(Allocator& allocator, const Trace& trace)
{
    ReplayResult result;
    std::unordered_map<std::uint64_t, void*> live;
    live.reserve(1024);
    int bound_tid = -1;

    for (const TraceOp& op : trace.ops()) {
        if (op.tid != bound_tid) {
            Policy::rebind_thread_index(op.tid);
            bound_tid = op.tid;
        }
        if (op.kind == TraceOp::Kind::alloc) {
            void* p = allocator.allocate(
                static_cast<std::size_t>(op.size));
            HOARD_CHECK(p != nullptr);
            live[op.object] = p;
            ++result.allocs;
        } else {
            auto it = live.find(op.object);
            HOARD_CHECK(it != live.end());
            allocator.deallocate(it->second);
            live.erase(it);
            ++result.frees;
        }
        std::uint64_t held = allocator.stats().held_bytes.current();
        if (held > result.peak_held_bytes)
            result.peak_held_bytes = held;
        std::uint64_t in_use = allocator.stats().in_use_bytes.current();
        if (in_use > result.peak_in_use_bytes)
            result.peak_in_use_bytes = in_use;
    }
    // Traces need not be balanced; free whatever remains so the
    // allocator quiesces.
    for (auto& [id, p] : live)
        allocator.deallocate(p);
    return result;
}

}  // namespace workloads
}  // namespace hoard

#endif  // HOARD_WORKLOADS_TRACE_H_
