/**
 * @file
 * NativePolicy-bound workload bodies, mirror of sim_bodies.h: used by
 * the fragmentation/blowup tables (which measure memory, not time, and
 * therefore run under real threads) and by the workload smoke tests.
 */

#ifndef HOARD_WORKLOADS_NATIVE_BODIES_H_
#define HOARD_WORKLOADS_NATIVE_BODIES_H_

#include <functional>
#include <memory>

#include "policy/native_policy.h"
#include "workloads/barneshut.h"
#include "workloads/bemsim.h"
#include "workloads/false_sharing.h"
#include "workloads/larson.h"
#include "workloads/shbench.h"
#include "workloads/threadtest.h"

namespace hoard {
namespace workloads {

/** Body signature: (allocator, tid, nthreads). */
using NativeWorkloadBody =
    std::function<void(Allocator& allocator, int tid, int nthreads)>;

inline NativeWorkloadBody
native_threadtest_body(ThreadtestParams params)
{
    return [params](Allocator& allocator, int tid, int nthreads) {
        ThreadtestParams p = params;
        p.nthreads = nthreads;
        threadtest_thread<NativePolicy>(allocator, p, tid);
    };
}

inline NativeWorkloadBody
native_shbench_body(ShbenchParams params)
{
    return [params](Allocator& allocator, int tid, int nthreads) {
        ShbenchParams p = params;
        p.nthreads = nthreads;
        p.operations = params.operations / nthreads;
        shbench_thread<NativePolicy>(allocator, p, tid);
    };
}

inline NativeWorkloadBody
native_larson_body(LarsonParams params)
{
    return [params](Allocator& allocator, int tid, int nthreads) {
        LarsonParams p = params;
        p.nthreads = nthreads;
        p.rounds_per_epoch = params.rounds_per_epoch / nthreads;
        larson_thread<NativePolicy>(allocator, p, tid);
    };
}

inline NativeWorkloadBody
native_active_false_body(FalseSharingParams params)
{
    return [params](Allocator& allocator, int tid, int nthreads) {
        FalseSharingParams p = params;
        p.nthreads = nthreads;
        active_false_thread<NativePolicy>(allocator, p, tid);
    };
}

inline NativeWorkloadBody
native_passive_false_body(FalseSharingParams params)
{
    auto state = std::make_shared<
        std::unique_ptr<PassiveFalseState<NativePolicy>>>();
    auto gate = std::make_shared<NativeEvent>();
    return [params, state, gate](Allocator& allocator, int tid,
                                 int nthreads) {
        FalseSharingParams p = params;
        p.nthreads = nthreads;
        if (tid == 0) {
            *state = std::make_unique<PassiveFalseState<NativePolicy>>(
                nthreads);
            gate->signal();
        } else {
            gate->wait();  // ensure the state exists before touching it
        }
        passive_false_thread<NativePolicy>(allocator, p, **state, tid);
    };
}

inline NativeWorkloadBody
native_bemsim_body(BemSimParams params)
{
    return [params](Allocator& allocator, int tid, int nthreads) {
        BemSimParams p = params;
        p.nthreads = nthreads;  // panels are taken round-robin
        bemsim_thread<NativePolicy>(allocator, p, tid);
    };
}

inline NativeWorkloadBody
native_barneshut_body(BarnesHutParams params)
{
    return [params](Allocator& allocator, int tid, int nthreads) {
        BarnesHutParams p = params;
        p.nthreads = nthreads;  // subsystems are taken round-robin
        barneshut_thread<NativePolicy>(allocator, p, tid);
    };
}

}  // namespace workloads
}  // namespace hoard

#endif  // HOARD_WORKLOADS_NATIVE_BODIES_H_
