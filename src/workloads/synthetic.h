/**
 * @file
 * Synthetic allocation-trace generator (Wilson/Johnstone methodology).
 *
 * The fragmentation literature the paper builds on evaluates
 * allocators on parameterized synthetic workloads: object sizes drawn
 * from a distribution, lifetimes from another, interleaved across
 * logical threads.  This module generates such workloads as Traces, so
 * they run through the same replay machinery as recorded ones — against
 * any allocator, natively or simulated.
 *
 * Distributions provided match the classic study shapes:
 *   - uniform sizes
 *   - geometric sizes (many small, few large — the common app profile)
 *   - bimodal sizes (small records + large buffers)
 * and lifetimes:
 *   - exponential-ish (most objects die young)
 *   - uniform window
 *   - phased (batch alloc, batch free — compiler/solver shape)
 */

#ifndef HOARD_WORKLOADS_SYNTHETIC_H_
#define HOARD_WORKLOADS_SYNTHETIC_H_

#include <cstddef>
#include <cstdint>

#include "common/rng.h"
#include "workloads/trace.h"

namespace hoard {
namespace workloads {

/** Object-size distribution families. */
enum class SizeDist
{
    uniform,    ///< uniform in [min_size, max_size]
    geometric,  ///< P(size doubles) = 0.5 starting at min_size
    bimodal,    ///< 90% in [min, 2*min], 10% in [max/2, max]
};

/** Object-lifetime distribution families. */
enum class LifetimeDist
{
    exponential,  ///< most objects die within mean_lifetime ops
    uniform,      ///< uniform in [1, 2*mean_lifetime] ops
    phased,       ///< born in a phase, all die at the phase boundary
};

/** Parameters for the synthetic generator. */
struct SyntheticParams
{
    int nthreads = 4;
    int operations = 20000;       ///< allocation events in total
    std::size_t min_size = 16;
    std::size_t max_size = 4096;
    SizeDist size_dist = SizeDist::geometric;
    LifetimeDist lifetime_dist = LifetimeDist::exponential;
    int mean_lifetime = 200;      ///< in allocation events
    int phase_length = 1000;      ///< for LifetimeDist::phased
    /**
     * Fraction of frees performed by a different thread than the
     * allocator of the object (producer/consumer bleed).
     */
    double cross_thread_free_fraction = 0.0;
    std::uint64_t seed = 0x515;
};

/** Draws one object size. */
std::size_t synthetic_size(detail::Rng& rng,
                           const SyntheticParams& params);

/** Draws one lifetime in allocation events. */
int synthetic_lifetime(detail::Rng& rng, const SyntheticParams& params,
                       int op_index);

/**
 * Generates a complete, balanced trace (every object freed) according
 * to @p params.  Deterministic in the seed.
 */
Trace generate_synthetic_trace(const SyntheticParams& params);

}  // namespace workloads
}  // namespace hoard

#endif  // HOARD_WORKLOADS_SYNTHETIC_H_
