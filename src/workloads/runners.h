/**
 * @file
 * Drivers that spawn workload thread bodies under each execution world:
 * real std::threads (tests, examples, native tables) or simulated
 * threads on a virtual-time Machine (speedup figures).
 */

#ifndef HOARD_WORKLOADS_RUNNERS_H_
#define HOARD_WORKLOADS_RUNNERS_H_

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "sim/machine.h"

namespace hoard {
namespace workloads {

/** Thread body: (thread id) -> work.  Captures allocator and params. */
using ThreadBody = std::function<void(int tid)>;

/** Runs @p nthreads real threads to completion. */
inline void
native_run(int nthreads, const ThreadBody& body)
{
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nthreads));
    for (int tid = 0; tid < nthreads; ++tid)
        threads.emplace_back([&body, tid] { body(tid); });
    for (std::thread& t : threads)
        t.join();
}

/**
 * Runs @p nthreads simulated threads on @p nprocs simulated processors
 * (thread i pinned to processor i mod nprocs) and returns the makespan
 * in virtual cycles.
 */
inline std::uint64_t
sim_run(int nprocs, int nthreads, const ThreadBody& body,
        const sim::CostModel& costs = sim::CostModel(),
        std::uint64_t quantum = 200)
{
    sim::Machine machine(nprocs, costs, quantum);
    for (int tid = 0; tid < nthreads; ++tid)
        machine.spawn(tid % nprocs, tid, [&body, tid] { body(tid); });
    return machine.run();
}

}  // namespace workloads
}  // namespace hoard

#endif  // HOARD_WORKLOADS_RUNNERS_H_
