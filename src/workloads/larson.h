/**
 * @file
 * Larson server benchmark (paper Table 2; Larson & Krishnan's "Memory
 * allocation for long-running server applications").
 *
 * Each thread owns an array of slots holding live objects and repeatedly
 * replaces a random slot (free + allocate a random 10..100-byte block).
 * After each epoch the slot array is handed to a "fresh" thread — we
 * model the churn by rebinding the thread's logical id, which moves it
 * to a different heap, so the frees of the previous epoch's objects are
 * cross-thread exactly as in the original.  This is the benchmark where
 * pure thread-id affinity schemes bleed (paper §5).
 */

#ifndef HOARD_WORKLOADS_LARSON_H_
#define HOARD_WORKLOADS_LARSON_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/allocator.h"
#include "workloads/workload_util.h"

namespace hoard {
namespace workloads {

/** Parameters for Larson. */
struct LarsonParams
{
    int nthreads = 4;
    /**
     * Live objects per thread.  The paper-era runs keep heaps dense
     * (~1000 slots over the 10..100-byte classes); with far fewer, the
     * per-class superblocks sit mostly empty and any invariant-keeping
     * allocator legitimately shuttles them through its global heap.
     */
    int slots_per_thread = 800;
    std::size_t min_bytes = 10;
    std::size_t max_bytes = 100;
    int rounds_per_epoch = 3000;  ///< random replacements per epoch
    int epochs = 4;               ///< thread generations
    std::uint64_t seed = 0x1a;
};

/** Body run by thread @p tid. */
template <typename Policy>
void
larson_thread(Allocator& allocator, const LarsonParams& params, int tid)
{
    Policy::rebind_thread_index(tid);
    detail::Rng rng = thread_rng(params.seed, tid);
    std::vector<void*> slots(
        static_cast<std::size_t>(params.slots_per_thread));

    // Under memory pressure allocate may return nullptr; a slot then
    // simply holds no object until a later replacement succeeds
    // (deallocate(nullptr) is a no-op).
    for (void*& slot : slots) {
        std::size_t bytes = rng.range(params.min_bytes, params.max_bytes);
        slot = allocator.allocate(bytes);
        if (slot != nullptr)
            write_memory<Policy>(slot, bytes);
    }

    for (int epoch = 0; epoch < params.epochs; ++epoch) {
        for (int round = 0; round < params.rounds_per_epoch; ++round) {
            auto idx = static_cast<std::size_t>(rng.below(slots.size()));
            allocator.deallocate(slots[idx]);
            std::size_t bytes =
                rng.range(params.min_bytes, params.max_bytes);
            slots[idx] = allocator.allocate(bytes);
            if (slots[idx] != nullptr)
                write_memory<Policy>(slots[idx], bytes);
        }
        // Hand the slot array to a fresh thread: new logical id, so the
        // next epoch frees this epoch's objects from a different heap.
        // Stride nthreads+1, not nthreads: with P == nthreads heaps a
        // multiple-of-nthreads stride would hash every generation back
        // to its birth heap and erase the cross-thread frees.
        Policy::rebind_thread_index(tid +
                                    (epoch + 1) * (params.nthreads + 1));
    }

    for (void* slot : slots)
        allocator.deallocate(slot);
}

}  // namespace workloads
}  // namespace hoard

#endif  // HOARD_WORKLOADS_LARSON_H_
