#include "workloads/trace.h"

#include <string>

#include "common/failure.h"
#include "policy/native_policy.h"

namespace hoard {
namespace workloads {

void
Trace::save(std::ostream& os) const
{
    os << "# hoard trace v1: 'a tid id size' | 'f tid id'\n";
    for (const TraceOp& op : ops_) {
        if (op.kind == TraceOp::Kind::alloc) {
            os << "a " << op.tid << ' ' << op.object << ' ' << op.size
               << '\n';
        } else {
            os << "f " << op.tid << ' ' << op.object << '\n';
        }
    }
}

Trace
Trace::load(std::istream& is)
{
    Trace trace;
    std::string token;
    while (is >> token) {
        if (token == "#") {
            std::string line;
            std::getline(is, line);
            continue;
        }
        TraceOp op{};
        if (token == "a") {
            op.kind = TraceOp::Kind::alloc;
            if (!(is >> op.tid >> op.object >> op.size))
                HOARD_FATAL("malformed alloc record in trace");
        } else if (token == "f") {
            op.kind = TraceOp::Kind::free_op;
            if (!(is >> op.tid >> op.object))
                HOARD_FATAL("malformed free record in trace");
        } else {
            HOARD_FATAL("unknown trace record '%s'", token.c_str());
        }
        trace.append(op);
    }
    return trace;
}

std::uint64_t
Trace::max_live_bytes() const
{
    std::unordered_map<std::uint64_t, std::uint64_t> live_sizes;
    std::uint64_t live = 0;
    std::uint64_t peak = 0;
    for (const TraceOp& op : ops_) {
        if (op.kind == TraceOp::Kind::alloc) {
            live_sizes[op.object] = op.size;
            live += op.size;
            if (live > peak)
                peak = live;
        } else {
            auto it = live_sizes.find(op.object);
            if (it != live_sizes.end()) {
                live -= it->second;
                live_sizes.erase(it);
            }
        }
    }
    return peak;
}

void*
TraceRecorder::allocate(std::size_t size)
{
    void* p = inner_.allocate(size);
    if (p == nullptr)
        return nullptr;
    std::lock_guard<std::mutex> guard(mutex_);
    std::uint64_t id = next_id_++;
    object_ids_[p] = id;
    trace_.append({TraceOp::Kind::alloc, static_cast<std::int32_t>(NativePolicy::thread_index()), id,
                   static_cast<std::uint64_t>(size)});
    return p;
}

void
TraceRecorder::deallocate(void* p)
{
    if (p == nullptr)
        return;
    {
        std::lock_guard<std::mutex> guard(mutex_);
        auto it = object_ids_.find(p);
        HOARD_CHECK(it != object_ids_.end());
        trace_.append(
            {TraceOp::Kind::free_op, static_cast<std::int32_t>(NativePolicy::thread_index()), it->second, 0});
        object_ids_.erase(it);
    }
    inner_.deallocate(p);
}

}  // namespace workloads
}  // namespace hoard
