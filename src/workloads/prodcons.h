/**
 * @file
 * Producer-consumer blowup demonstration (paper §2.2).
 *
 * A producer allocates a batch, a consumer frees it, forever.  The
 * program's live memory is one batch, but a pure-private-heaps allocator
 * grows without bound: the producer never sees the memory its consumer
 * frees.  Ownership-based allocators cap the growth at O(P); Hoard's
 * emptiness invariant caps it at O(1).
 *
 * The allocator-visible pattern is "heap A allocates, heap B frees", so
 * we reproduce it by *rebinding the logical thread id* between the
 * allocate and free halves of each round — no queue or synchronization
 * is needed, the memory behavior is identical, and the measurement
 * (held bytes vs rounds, TBL-blowup) is exact and deterministic.
 */

#ifndef HOARD_WORKLOADS_PRODCONS_H_
#define HOARD_WORKLOADS_PRODCONS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/allocator.h"
#include "workloads/workload_util.h"

namespace hoard {
namespace workloads {

/** Parameters for the producer-consumer blowup experiment. */
struct ProdConsParams
{
    int pairs = 1;            ///< independent producer/consumer pairs
    int rounds = 50;          ///< batches per pair
    int batch_objects = 500;  ///< objects per batch
    std::size_t object_bytes = 64;
};

/**
 * Runs one producer/consumer pair: producer id = 2*pair, consumer
 * id = 2*pair + 1.  Records the allocator's held bytes after each round
 * into @p held_series when non-null.
 */
template <typename Policy>
void
prodcons_pair(Allocator& allocator, const ProdConsParams& params, int pair,
              std::vector<std::size_t>* held_series = nullptr)
{
    const int producer = 2 * pair;
    const int consumer = 2 * pair + 1;
    std::vector<void*> batch(
        static_cast<std::size_t>(params.batch_objects));

    for (int round = 0; round < params.rounds; ++round) {
        Policy::rebind_thread_index(producer);
        for (void*& p : batch) {
            p = allocator.allocate(params.object_bytes);
            write_memory<Policy>(p, params.object_bytes);
        }
        Policy::rebind_thread_index(consumer);
        for (void* p : batch)
            allocator.deallocate(p);
        if (held_series != nullptr)
            held_series->push_back(allocator.stats().held_bytes.current());
    }
}

/**
 * The paper's P-fold blowup scenario for ownership-based allocators:
 * the *producer role rotates* around @p nroles logical threads while
 * live memory stays at exactly one batch.  An allocator whose heaps
 * never give memory back strands one batch per role it ever touched
 * (footprint grows linearly in nroles); Hoard's emptiness invariant
 * recycles each abandoned heap's superblocks through the global heap,
 * so its footprint stays O(live + K*S per heap).
 */
template <typename Policy>
void
prodcons_rotating(Allocator& allocator, const ProdConsParams& params,
                  int nroles,
                  std::vector<std::size_t>* held_series = nullptr)
{
    std::vector<void*> batch(
        static_cast<std::size_t>(params.batch_objects));
    for (int round = 0; round < params.rounds; ++round) {
        int producer = round % nroles;
        int consumer = (round + 1) % nroles;
        Policy::rebind_thread_index(producer);
        for (void*& p : batch) {
            p = allocator.allocate(params.object_bytes);
            write_memory<Policy>(p, params.object_bytes);
        }
        Policy::rebind_thread_index(consumer);
        for (void* p : batch)
            allocator.deallocate(p);
        if (held_series != nullptr)
            held_series->push_back(allocator.stats().held_bytes.current());
    }
}

}  // namespace workloads
}  // namespace hoard

#endif  // HOARD_WORKLOADS_PRODCONS_H_
