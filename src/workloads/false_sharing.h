/**
 * @file
 * active-false and passive-false (paper Table 2; the cache-thrash /
 * cache-scratch pair in the Hoard distribution).
 *
 * active-false: each thread loops { allocate a small object, write it
 * many times, free it }.  An allocator that carves one cache line across
 * threads *actively induces* false sharing and the per-write line
 * ping-pong destroys scaling.
 *
 * passive-false: the main thread allocates one small object per worker
 * and hands it over; each worker frees the gift and then runs the
 * active-false loop.  Allocators that let the freed line-mates be reused
 * by other threads *passively* inherit false sharing from the program's
 * handoff.
 */

#ifndef HOARD_WORKLOADS_FALSE_SHARING_H_
#define HOARD_WORKLOADS_FALSE_SHARING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/allocator.h"
#include "workloads/workload_util.h"

namespace hoard {
namespace workloads {

/** Parameters shared by both false-sharing benchmarks. */
struct FalseSharingParams
{
    int nthreads = 4;
    int total_objects = 1200;     ///< alloc/free rounds, split over threads
    int writes_per_object = 600;  ///< hammering between alloc and free
    std::size_t object_bytes = 8;

    int
    objects_per_thread() const
    {
        return total_objects / nthreads;
    }
};

/** active-false body run by thread @p tid. */
template <typename Policy>
void
active_false_thread(Allocator& allocator, const FalseSharingParams& params,
                    int tid)
{
    Policy::rebind_thread_index(tid);
    const int rounds = params.objects_per_thread();
    for (int i = 0; i < rounds; ++i) {
        void* p = allocator.allocate(params.object_bytes);
        hammer_byte<Policy>(p, params.writes_per_object);
        allocator.deallocate(p);
    }
}

/** Shared setup state for passive-false. */
template <typename Policy>
struct PassiveFalseState
{
    explicit PassiveFalseState(int nthreads)
        : gifts(static_cast<std::size_t>(nthreads), nullptr)
    {}

    std::vector<void*> gifts;       ///< one object per worker, from tid 0
    typename Policy::Event ready;   ///< signaled after gifts are placed
};

/**
 * passive-false body run by thread @p tid.  Thread 0 allocates the
 * gifts (adjacent small objects — line-mates), signals, and then works
 * like everyone else; workers free their gift first, seeding their
 * heaps with fragments of thread 0's cache lines.
 */
template <typename Policy>
void
passive_false_thread(Allocator& allocator,
                     const FalseSharingParams& params,
                     PassiveFalseState<Policy>& state, int tid)
{
    Policy::rebind_thread_index(tid);
    if (tid == 0) {
        for (std::size_t i = 0; i < state.gifts.size(); ++i) {
            state.gifts[i] = allocator.allocate(params.object_bytes);
            write_memory<Policy>(state.gifts[i], params.object_bytes);
        }
        state.ready.signal();
    } else {
        state.ready.wait();
    }

    // Every worker (including 0) frees "its" gift, then churns.
    allocator.deallocate(state.gifts[static_cast<std::size_t>(tid)]);
    const int rounds = params.objects_per_thread();
    for (int i = 0; i < rounds; ++i) {
        void* p = allocator.allocate(params.object_bytes);
        hammer_byte<Policy>(p, params.writes_per_object);
        allocator.deallocate(p);
    }
}

}  // namespace workloads
}  // namespace hoard

#endif  // HOARD_WORKLOADS_FALSE_SHARING_H_
