/**
 * @file
 * Barnes-Hut n-body simulation (paper Table 2).
 *
 * A real (small) implementation: each thread owns a set of bodies in the
 * unit cube; every step it builds an octree over its bodies (every node
 * allocated through the allocator under test), computes approximate
 * forces with the theta criterion, integrates, and tears the tree down.
 * Allocation is a moderate fraction of the work — tree nodes are
 * 100+ bytes and short-lived — which is exactly the profile the paper
 * uses it for.
 */

#ifndef HOARD_WORKLOADS_BARNESHUT_H_
#define HOARD_WORKLOADS_BARNESHUT_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/failure.h"
#include "core/allocator.h"
#include "workloads/workload_util.h"

namespace hoard {
namespace workloads {

/** Parameters for Barnes-Hut. */
struct BarnesHutParams
{
    int nthreads = 4;
    /**
     * Domain decomposition: the simulation is a fixed set of
     * subsystems (spatial cells integrated independently per step, the
     * classic BH parallelization granule); threads take subsystems
     * round-robin.  Total work is therefore independent of nthreads —
     * required for an honest speedup axis — with visible load
     * imbalance when nthreads does not divide total_systems.
     */
    int total_systems = 28;
    int bodies_per_system = 150;
    int steps = 3;
    double theta = 0.6;      ///< opening criterion
    double dt = 0.01;        ///< integration step
    std::uint64_t seed = 0xb4;
};

namespace bh {

/** A point mass. */
struct Body
{
    double pos[3];
    double vel[3];
    double acc[3];
    double mass;
};

/** Octree node; leaves hold one body, internal nodes eight children. */
struct Node
{
    double center[3];   ///< cell center
    double half;        ///< cell half-width
    double com[3];      ///< center of mass
    double mass = 0.0;
    Body* body = nullptr;
    Node* children[8] = {};
    bool leaf = true;
};

/** Octant of @p pos relative to @p node's center. */
inline int
octant(const Node* node, const double* pos)
{
    int o = 0;
    for (int d = 0; d < 3; ++d) {
        if (pos[d] >= node->center[d])
            o |= 1 << d;
    }
    return o;
}

/** Allocates a child cell of @p parent in octant @p o. */
template <typename Policy>
Node*
make_child(Allocator& allocator, const Node* parent, int o)
{
    void* mem = allocator.allocate(sizeof(Node));
    Policy::touch(mem, sizeof(Node), true);
    auto* child = new (mem) Node();
    child->half = parent->half / 2;
    for (int d = 0; d < 3; ++d) {
        double off = (o & (1 << d)) ? child->half : -child->half;
        child->center[d] = parent->center[d] + off;
    }
    return child;
}

/** Inserts @p body into the tree rooted at @p node. */
template <typename Policy>
void
insert(Allocator& allocator, Node* node, Body* body, int depth = 0)
{
    if (node->leaf && node->body == nullptr) {
        node->body = body;
        return;
    }
    if (node->leaf) {
        // Split: push the resident body down, then fall through.
        Body* resident = node->body;
        node->body = nullptr;
        node->leaf = false;
        if (depth > 64) {
            // Coincident points: merge masses instead of recursing.
            for (int d = 0; d < 3; ++d)
                resident->pos[d] += 1e-9 * (d + 1);
        }
        int ro = octant(node, resident->pos);
        node->children[ro] = make_child<Policy>(allocator, node, ro);
        insert<Policy>(allocator, node->children[ro], resident, depth + 1);
    }
    int o = octant(node, body->pos);
    if (node->children[o] == nullptr)
        node->children[o] = make_child<Policy>(allocator, node, o);
    insert<Policy>(allocator, node->children[o], body, depth + 1);
}

/** Computes centers of mass bottom-up. */
inline void
summarize(Node* node)
{
    if (node->leaf) {
        if (node->body != nullptr) {
            node->mass = node->body->mass;
            for (int d = 0; d < 3; ++d)
                node->com[d] = node->body->pos[d];
        }
        return;
    }
    double m = 0.0;
    double c[3] = {0, 0, 0};
    for (Node* child : node->children) {
        if (child == nullptr)
            continue;
        summarize(child);
        m += child->mass;
        for (int d = 0; d < 3; ++d)
            c[d] += child->mass * child->com[d];
    }
    node->mass = m;
    if (m > 0) {
        for (int d = 0; d < 3; ++d)
            node->com[d] = c[d] / m;
    }
}

/** Accumulates the force on @p body from cell @p node. */
template <typename Policy>
void
accumulate_force(const Node* node, Body* body, double theta)
{
    if (node == nullptr || node->mass == 0.0 || node->body == body)
        return;
    // Plummer softening: bounds the force of close encounters so the
    // integrator cannot catapult bodies to infinity.
    double d2 = 1e-4;
    for (int d = 0; d < 3; ++d) {
        double dx = node->com[d] - body->pos[d];
        d2 += dx * dx;
    }
    double dist = std::sqrt(d2);
    if (node->leaf || (2 * node->half) / dist < theta) {
        Policy::work(12);  // one interaction's worth of flops
        double f = node->mass / (d2 * dist);
        for (int d = 0; d < 3; ++d)
            body->acc[d] += f * (node->com[d] - body->pos[d]);
        return;
    }
    for (const Node* child : node->children)
        accumulate_force<Policy>(child, body, theta);
}

/** Frees the tree rooted at @p node. */
inline void
destroy(Allocator& allocator, Node* node)
{
    if (node == nullptr)
        return;
    for (Node* child : node->children)
        destroy(allocator, child);
    node->~Node();
    allocator.deallocate(node);
}

}  // namespace bh

/** Integrates one subsystem for params.steps steps. */
template <typename Policy>
void
barneshut_run_system(Allocator& allocator, const BarnesHutParams& params,
                     int system_id)
{
    detail::Rng rng = thread_rng(params.seed, system_id);

    std::vector<bh::Body> bodies(
        static_cast<std::size_t>(params.bodies_per_system));
    for (bh::Body& b : bodies) {
        for (int d = 0; d < 3; ++d) {
            b.pos[d] = rng.uniform();
            b.vel[d] = (rng.uniform() - 0.5) * 0.1;
            b.acc[d] = 0.0;
        }
        b.mass = 0.5 + rng.uniform();
    }

    for (int step = 0; step < params.steps; ++step) {
        void* mem = allocator.allocate(sizeof(bh::Node));
        Policy::touch(mem, sizeof(bh::Node), true);
        auto* root = new (mem) bh::Node();
        // Root cell = the step's actual bounding cube.  A fixed cube
        // breaks once integration drifts a body outside: points beyond
        // the cube compare identically against every descendant center
        // along the escaped axis and insertion recurses forever.
        double lo[3] = {bodies[0].pos[0], bodies[0].pos[1],
                        bodies[0].pos[2]};
        double hi[3] = {lo[0], lo[1], lo[2]};
        for (const bh::Body& b : bodies) {
            for (int d = 0; d < 3; ++d) {
                lo[d] = std::min(lo[d], b.pos[d]);
                hi[d] = std::max(hi[d], b.pos[d]);
            }
        }
        double half = 1e-6;
        for (int d = 0; d < 3; ++d) {
            root->center[d] = (lo[d] + hi[d]) / 2;
            half = std::max(half, (hi[d] - lo[d]) / 2);
        }
        root->half = half * 1.001;

        for (bh::Body& b : bodies)
            bh::insert<Policy>(allocator, root, &b);
        bh::summarize(root);

        for (bh::Body& b : bodies) {
            b.acc[0] = b.acc[1] = b.acc[2] = 0.0;
            bh::accumulate_force<Policy>(root, &b, params.theta);
            for (int d = 0; d < 3; ++d) {
                b.vel[d] += b.acc[d] * params.dt;
                b.pos[d] += b.vel[d] * params.dt;
            }
        }
        bh::destroy(allocator, root);
    }
}

/** Body run by thread @p tid: subsystems tid, tid+n, tid+2n, ... */
template <typename Policy>
void
barneshut_thread(Allocator& allocator, const BarnesHutParams& params,
                 int tid)
{
    Policy::rebind_thread_index(tid);
    for (int sys = tid; sys < params.total_systems;
         sys += params.nthreads)
        barneshut_run_system<Policy>(allocator, params, sys);
}

}  // namespace workloads
}  // namespace hoard

#endif  // HOARD_WORKLOADS_BARNESHUT_H_
