/**
 * @file
 * BEMengine proxy (paper Table 2).
 *
 * BEMengine is a proprietary boundary-element-method solver; this proxy
 * reproduces its allocator-visible behavior per the paper's description:
 * solver phases that (1) bulk-allocate a mix of many small element
 * records and a few large panel matrices, (2) sweep over them writing
 * (matrix assembly), (3) free the elements in a scattered order and the
 * panels at phase end.  Allocation is a smaller fraction of the work
 * than in the micro-benchmarks, so all allocators scale somewhat — the
 * paper's point is that Hoard does not get in the way.
 */

#ifndef HOARD_WORKLOADS_BEMSIM_H_
#define HOARD_WORKLOADS_BEMSIM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/allocator.h"
#include "workloads/workload_util.h"

namespace hoard {
namespace workloads {

/** Parameters for the BEM solver proxy. */
struct BemSimParams
{
    int nthreads = 4;
    int phases = 3;                   ///< solver iterations
    /**
     * Total matrix panels in the problem; threads take panels
     * round-robin so total work is independent of nthreads.
     */
    int total_panels = 16;
    std::size_t panel_bytes = 32768;  ///< > S/2: exercises the huge path
    int elements_per_panel = 400;     ///< small records per panel
    std::size_t min_element_bytes = 24;
    std::size_t max_element_bytes = 256;
    std::uint64_t assembly_work = 40; ///< compute per element visit
    std::uint64_t seed = 0xbe;
};

/** Body run by thread @p tid: panels tid, tid+n, tid+2n, ... */
template <typename Policy>
void
bemsim_thread(Allocator& allocator, const BemSimParams& params, int tid)
{
    Policy::rebind_thread_index(tid);
    detail::Rng rng = thread_rng(params.seed, tid);

    int my_panels = 0;
    for (int p = tid; p < params.total_panels; p += params.nthreads)
        ++my_panels;

    for (int phase = 0; phase < params.phases; ++phase) {
        std::vector<void*> panels;
        std::vector<void*> elements;
        panels.reserve(static_cast<std::size_t>(my_panels));
        elements.reserve(static_cast<std::size_t>(
            my_panels * params.elements_per_panel));

        // (1) Discretization: allocate panels and their elements.
        for (int p = 0; p < my_panels; ++p) {
            void* panel = allocator.allocate(params.panel_bytes);
            write_memory<Policy>(panel, params.panel_bytes);
            panels.push_back(panel);
            for (int e = 0; e < params.elements_per_panel; ++e) {
                std::size_t bytes = rng.range(params.min_element_bytes,
                                              params.max_element_bytes);
                void* elem = allocator.allocate(bytes);
                write_memory<Policy>(elem, bytes);
                elements.push_back(elem);
            }
        }

        // (2) Assembly: sweep elements, writing back into them.
        for (void* elem : elements) {
            Policy::work(params.assembly_work);
            write_memory<Policy>(elem, params.min_element_bytes, 0x5a);
        }

        // (3) Teardown: elements in scattered order, then panels.
        for (std::size_t i = elements.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(rng.below(i));
            std::swap(elements[i - 1], elements[j]);
        }
        for (void* elem : elements)
            allocator.deallocate(elem);
        for (void* panel : panels)
            allocator.deallocate(panel);
    }
}

}  // namespace workloads
}  // namespace hoard

#endif  // HOARD_WORKLOADS_BEMSIM_H_
