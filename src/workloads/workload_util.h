/**
 * @file
 * Shared helpers for the benchmark workloads: memory-use shims that both
 * genuinely touch the bytes (so native runs catch corruption) and charge
 * the simulator's cache model (so simulated runs price false sharing).
 */

#ifndef HOARD_WORKLOADS_WORKLOAD_UTIL_H_
#define HOARD_WORKLOADS_WORKLOAD_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/rng.h"

namespace hoard {
namespace workloads {

/** Writes @p n bytes at @p p and charges the write to the cache model. */
template <typename Policy>
inline void
write_memory(void* p, std::size_t n, std::uint8_t value = 0xab)
{
    Policy::touch(p, n, true);
    std::memset(p, value, n);
}

/**
 * Repeatedly mutates the first byte of @p p — the inner loop of the
 * false-sharing benchmarks.  Each write is charged separately so a
 * ping-ponging line is priced per bounce.
 */
template <typename Policy>
inline void
hammer_byte(void* p, int times)
{
    auto* b = static_cast<volatile std::uint8_t*>(p);
    for (int i = 0; i < times; ++i) {
        Policy::touch(p, 1, true);
        *b = static_cast<std::uint8_t>(*b + 1);
    }
}

/** Reads @p n bytes (checksum) and charges the read. */
template <typename Policy>
inline std::uint64_t
read_memory(const void* p, std::size_t n)
{
    Policy::touch(p, n, false);
    const auto* b = static_cast<const std::uint8_t*>(p);
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < n; ++i)
        sum += b[i];
    return sum;
}

/** Per-thread RNG seeded from a workload seed and the thread id. */
inline detail::Rng
thread_rng(std::uint64_t seed, int tid)
{
    return detail::Rng(seed * 0x9e3779b97f4a7c15ULL +
                       static_cast<std::uint64_t>(tid) + 1);
}

}  // namespace workloads
}  // namespace hoard

#endif  // HOARD_WORKLOADS_WORKLOAD_UTIL_H_
