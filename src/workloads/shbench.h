/**
 * @file
 * shbench proxy (paper Table 2: the MicroQuill SmartHeap benchmark).
 *
 * The original trace is proprietary; this synthetic equivalent preserves
 * the features the paper's analysis leans on — mixed sizes spanning many
 * size classes (1..1000 bytes, skewed small), interleaved lifetimes via
 * a random-replacement working set, and bursts of batched frees.  See
 * DESIGN.md §3 for the substitution rationale.
 */

#ifndef HOARD_WORKLOADS_SHBENCH_H_
#define HOARD_WORKLOADS_SHBENCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/allocator.h"
#include "workloads/workload_util.h"

namespace hoard {
namespace workloads {

/** Parameters for the shbench proxy. */
struct ShbenchParams
{
    int nthreads = 4;
    int operations = 12000;     ///< ops per thread
    int working_set = 400;      ///< live objects per thread
    std::size_t min_bytes = 1;
    std::size_t max_bytes = 1000;
    int batch_interval = 64;    ///< every N ops, free a burst
    int batch_size = 32;
    std::uint64_t seed = 0x5b;
};

/** Draws a size skewed toward small allocations (80/20). */
inline std::size_t
shbench_size(detail::Rng& rng, const ShbenchParams& params)
{
    std::size_t small_cap = params.max_bytes / 8 < params.min_bytes
                                ? params.max_bytes
                                : params.max_bytes / 8;
    if (rng.chance(0.8))
        return rng.range(params.min_bytes, small_cap);
    return rng.range(params.min_bytes, params.max_bytes);
}

/** Body run by thread @p tid. */
template <typename Policy>
void
shbench_thread(Allocator& allocator, const ShbenchParams& params, int tid)
{
    Policy::rebind_thread_index(tid);
    detail::Rng rng = thread_rng(params.seed, tid);
    std::vector<void*> slots(static_cast<std::size_t>(params.working_set),
                             nullptr);

    for (int op = 0; op < params.operations; ++op) {
        auto slot = static_cast<std::size_t>(
            rng.below(static_cast<std::uint64_t>(params.working_set)));
        if (slots[slot] != nullptr)
            allocator.deallocate(slots[slot]);
        std::size_t bytes = shbench_size(rng, params);
        slots[slot] = allocator.allocate(bytes);
        write_memory<Policy>(slots[slot], bytes);

        if (params.batch_interval > 0 &&
            op % params.batch_interval == params.batch_interval - 1) {
            // Burst free: drop a run of consecutive slots.
            for (int k = 0; k < params.batch_size; ++k) {
                auto idx = (slot + static_cast<std::size_t>(k)) %
                           slots.size();
                if (slots[idx] != nullptr) {
                    allocator.deallocate(slots[idx]);
                    slots[idx] = nullptr;
                }
            }
        }
    }
    for (void* p : slots) {
        if (p != nullptr)
            allocator.deallocate(p);
    }
}

}  // namespace workloads
}  // namespace hoard

#endif  // HOARD_WORKLOADS_SHBENCH_H_
