/**
 * @file
 * Memory-pattern helpers used by tests and conformance suites to detect
 * overlapping or corrupted allocations, plus the cache-line constant the
 * false-sharing machinery is built around.
 */

#ifndef HOARD_COMMON_MEMUTIL_H_
#define HOARD_COMMON_MEMUTIL_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace hoard {
namespace detail {

/** Cache-line size assumed by the false-sharing model and tests. */
inline constexpr std::size_t kCacheLineBytes = 64;

/** Deterministic byte pattern derived from an address and a salt. */
inline std::uint8_t
pattern_byte(const void* p, std::size_t i, std::uint64_t salt)
{
    std::uint64_t x = reinterpret_cast<std::uintptr_t>(p) + i * 1315423911ULL +
                      salt * 2654435761ULL;
    x ^= x >> 33;
    return static_cast<std::uint8_t>(x * 0xff51afd7ed558ccdULL >> 56);
}

/** Fills [p, p+n) with the pattern for (p, salt). */
inline void
pattern_fill(void* p, std::size_t n, std::uint64_t salt)
{
    auto* b = static_cast<std::uint8_t*>(p);
    for (std::size_t i = 0; i < n; ++i)
        b[i] = pattern_byte(p, i, salt);
}

/** True iff [p, p+n) still holds the pattern for (p, salt). */
inline bool
pattern_check(const void* p, std::size_t n, std::uint64_t salt)
{
    const auto* b = static_cast<const std::uint8_t*>(p);
    for (std::size_t i = 0; i < n; ++i) {
        if (b[i] != pattern_byte(p, i, salt))
            return false;
    }
    return true;
}

}  // namespace detail
}  // namespace hoard

#endif  // HOARD_COMMON_MEMUTIL_H_
