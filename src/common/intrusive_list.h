/**
 * @file
 * Intrusive doubly-linked list.
 *
 * The allocator cannot call malloc to manage its own bookkeeping, so all
 * superblock lists (fullness groups, the global heap's recycling list) are
 * intrusive: the element embeds a ListNode hook and the list only relinks
 * pointers.  All operations are O(1) except size(), which is maintained as
 * a counter and is O(1) too.
 */

#ifndef HOARD_COMMON_INTRUSIVE_LIST_H_
#define HOARD_COMMON_INTRUSIVE_LIST_H_

#include <cstddef>

#include "common/failure.h"

namespace hoard {
namespace detail {

/** Hook embedded in any object that wants to live on an IntrusiveList. */
struct ListNode
{
    ListNode* prev = nullptr;
    ListNode* next = nullptr;

    /** True iff this node is currently linked into some list. */
    bool linked() const { return prev != nullptr || next != nullptr; }
};

/**
 * Doubly-linked list of objects of type T, which must embed a ListNode
 * reachable via the @p Hook pointer-to-member.
 *
 * The list does not own its elements; unlinking never destroys anything.
 */
template <typename T, ListNode T::* Hook>
class IntrusiveList
{
  public:
    IntrusiveList()
    {
        head_.prev = &head_;
        head_.next = &head_;
    }

    IntrusiveList(const IntrusiveList&) = delete;
    IntrusiveList& operator=(const IntrusiveList&) = delete;

    bool empty() const { return head_.next == &head_; }
    std::size_t size() const { return size_; }

    /** Inserts @p elem at the front. @pre elem is not on any list. */
    void
    push_front(T* elem)
    {
        insert_after(&head_, elem);
    }

    /** Inserts @p elem at the back. @pre elem is not on any list. */
    void
    push_back(T* elem)
    {
        insert_after(head_.prev, elem);
    }

    /** Returns the first element, or nullptr if empty. */
    T*
    front() const
    {
        return empty() ? nullptr : owner(head_.next);
    }

    /** Returns the last element, or nullptr if empty. */
    T*
    back() const
    {
        return empty() ? nullptr : owner(head_.prev);
    }

    /** Unlinks and returns the first element, or nullptr if empty. */
    T*
    pop_front()
    {
        T* e = front();
        if (e != nullptr)
            remove(e);
        return e;
    }

    /** Unlinks and returns the last element, or nullptr if empty. */
    T*
    pop_back()
    {
        T* e = back();
        if (e != nullptr)
            remove(e);
        return e;
    }

    /** Unlinks @p elem. @pre elem is on *this* list. */
    void
    remove(T* elem)
    {
        ListNode* n = hook(elem);
        HOARD_DCHECK(n->linked());
        HOARD_DCHECK(size_ > 0);
        n->prev->next = n->next;
        n->next->prev = n->prev;
        n->prev = nullptr;
        n->next = nullptr;
        --size_;
    }

    /** Element after @p elem, or nullptr at the end. */
    T*
    next(T* elem) const
    {
        ListNode* n = hook(elem)->next;
        return n == &head_ ? nullptr : owner(n);
    }

    /** True iff @p elem is linked into some list (not necessarily this). */
    static bool
    is_linked(const T* elem)
    {
        return (elem->*Hook).linked();
    }

  private:
    static ListNode* hook(T* elem) { return &(elem->*Hook); }
    static const ListNode* hook(const T* elem) { return &(elem->*Hook); }

    /** Byte offset of the hook member within T (container_of helper). */
    static std::ptrdiff_t
    hook_offset()
    {
        // Address-only probe into uninitialized storage; no object is
        // read or written, we just measure the member displacement.
        alignas(T) static char storage[sizeof(T)];
        T* probe = reinterpret_cast<T*>(storage);
        return reinterpret_cast<char*>(&(probe->*Hook)) -
               reinterpret_cast<char*>(probe);
    }

    /** Recovers the T* from a pointer to its embedded hook. */
    static T*
    owner(ListNode* n)
    {
        return reinterpret_cast<T*>(reinterpret_cast<char*>(n) -
                                    hook_offset());
    }

    void
    insert_after(ListNode* pos, T* elem)
    {
        ListNode* n = hook(elem);
        HOARD_DCHECK(!n->linked());
        n->prev = pos;
        n->next = pos->next;
        pos->next->prev = n;
        pos->next = n;
        ++size_;
    }

    ListNode head_;
    std::size_t size_ = 0;
};

}  // namespace detail
}  // namespace hoard

#endif  // HOARD_COMMON_INTRUSIVE_LIST_H_
