#include "common/failure.h"

#include <cstdarg>

namespace hoard {
namespace detail {

void
fail(const char* kind, const char* file, int line, const char* fmt, ...)
{
    std::fprintf(stderr, "hoard %s at %s:%d: ", kind, file, line);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
    std::abort();
}

}  // namespace detail
}  // namespace hoard
