/**
 * @file
 * Failure handling for the hoard reproduction library.
 *
 * Two severities, following the gem5 convention:
 *  - HOARD_FATAL: the caller misused the library (bad config, bad pointer).
 *  - HOARD_PANIC / HOARD_ASSERT: an internal invariant broke (a bug here).
 *
 * Both print a message with source location and abort.  The allocator's
 * hot paths use HOARD_DCHECK, which compiles away in NDEBUG builds.
 */

#ifndef HOARD_COMMON_FAILURE_H_
#define HOARD_COMMON_FAILURE_H_

#include <cstdio>
#include <cstdlib>

namespace hoard {
namespace detail {

/** Prints a formatted failure report and aborts.  Never returns. */
[[noreturn]] void
fail(const char* kind, const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));

}  // namespace detail
}  // namespace hoard

/** Unrecoverable user error (bad argument, invalid configuration). */
#define HOARD_FATAL(...) \
    ::hoard::detail::fail("fatal", __FILE__, __LINE__, __VA_ARGS__)

/** Unrecoverable internal error (a bug in this library). */
#define HOARD_PANIC(...) \
    ::hoard::detail::fail("panic", __FILE__, __LINE__, __VA_ARGS__)

/** Internal invariant check, always on. */
#define HOARD_CHECK(cond)                                                 \
    do {                                                                  \
        if (__builtin_expect(!(cond), 0)) {                               \
            ::hoard::detail::fail("check", __FILE__, __LINE__,            \
                                  "invariant failed: %s", #cond);         \
        }                                                                 \
    } while (0)

/** Internal invariant check, compiled out in NDEBUG builds. */
#ifdef NDEBUG
#define HOARD_DCHECK(cond) \
    do {                   \
    } while (0)
#else
#define HOARD_DCHECK(cond) HOARD_CHECK(cond)
#endif

#endif  // HOARD_COMMON_FAILURE_H_
