/**
 * @file
 * Small integer/alignment helpers shared by every module.
 */

#ifndef HOARD_COMMON_MATHUTIL_H_
#define HOARD_COMMON_MATHUTIL_H_

#include <cstddef>
#include <cstdint>

#include "common/failure.h"

namespace hoard {
namespace detail {

/** True iff @p x is a power of two (0 is not). */
constexpr bool
is_pow2(std::size_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Rounds @p x up to the next multiple of @p align (a power of two). */
constexpr std::size_t
align_up(std::size_t x, std::size_t align)
{
    return (x + align - 1) & ~(align - 1);
}

/** Rounds @p x down to a multiple of @p align (a power of two). */
constexpr std::size_t
align_down(std::size_t x, std::size_t align)
{
    return x & ~(align - 1);
}

/** True iff @p x is a multiple of @p align (a power of two). */
constexpr bool
is_aligned(std::size_t x, std::size_t align)
{
    return (x & (align - 1)) == 0;
}

/** True iff pointer @p p is @p align-aligned. */
inline bool
is_aligned(const void* p, std::size_t align)
{
    return is_aligned(reinterpret_cast<std::uintptr_t>(p), align);
}

/** Ceiling division for non-negative integers. */
constexpr std::size_t
ceil_div(std::size_t a, std::size_t b)
{
    return (a + b - 1) / b;
}

/** floor(log2(x)) for x >= 1. */
constexpr unsigned
floor_log2(std::size_t x)
{
    unsigned r = 0;
    while (x >>= 1)
        ++r;
    return r;
}

/** Smallest power of two >= x (x >= 1). */
constexpr std::size_t
next_pow2(std::size_t x)
{
    std::size_t p = 1;
    while (p < x)
        p <<= 1;
    return p;
}

}  // namespace detail
}  // namespace hoard

#endif  // HOARD_COMMON_MATHUTIL_H_
