/**
 * @file
 * Strict command-line parser shared by the tools and bench binaries.
 *
 * One registry, one behavior everywhere: flags are declared up front
 * with a destination and a help line, parsing is strict — an unknown
 * flag or a missing/malformed value prints a message plus the usage
 * block to stderr and exits 2, so a typo like --qiuck can never
 * silently change what a run measured — and --help prints the same
 * usage block to stdout and exits 0.  The usage text is generated from
 * the registry, which keeps it from drifting out of sync with the
 * accepted flags (the failure mode the hand-rolled loops this replaces
 * had: hoardctl's usage still advertised the v1 timeline schema).
 *
 * Header-only and allocation-light on purpose: bench binaries include
 * it before any allocator exists.
 */

#ifndef HOARD_COMMON_CLI_H_
#define HOARD_COMMON_CLI_H_

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

namespace hoard {
namespace cli {

/** basename(argv[0]) — stable program identifier for messages. */
inline std::string
program_name(const char* argv0, const char* fallback = "tool")
{
    std::string name = argv0 != nullptr ? argv0 : fallback;
    std::size_t slash = name.find_last_of('/');
    if (slash != std::string::npos)
        name = name.substr(slash + 1);
    return name;
}

/**
 * The flag registry and parser.  Declare every flag with an add_*
 * call, then call parse(); destinations keep their initial values when
 * the flag is absent, so defaults live at the declaration site of the
 * options struct, visible next to their documentation.
 */
class Parser
{
  public:
    /** @p summary: one line printed under "usage:", may be empty. */
    explicit Parser(std::string summary = "") :
        summary_(std::move(summary))
    {
    }

    /** Presence flag: stores @p value (default true) into @p out. */
    void
    add_flag(const char* name, const char* help, bool* out,
             bool value = true)
    {
        Flag f;
        f.name = name;
        f.help = help;
        f.kind = Flag::kBool;
        f.out_bool = out;
        f.bool_value = value;
        flags_.push_back(std::move(f));
    }

    /** Bounded decimal int; rejects non-numeric and out-of-range. */
    void
    add_int(const char* name, const char* metavar, const char* help,
            int* out, long long min = 1, long long max = 1 << 20)
    {
        Flag f;
        f.name = name;
        f.metavar = metavar;
        f.help = help;
        f.kind = Flag::kInt;
        f.out_int = out;
        f.min = min;
        f.max = max;
        flags_.push_back(std::move(f));
    }

    /** Bounded decimal uint64 (byte counts, intervals, rates). */
    void
    add_uint64(const char* name, const char* metavar, const char* help,
               std::uint64_t* out, std::uint64_t min = 0,
               std::uint64_t max =
                   std::numeric_limits<std::uint64_t>::max())
    {
        Flag f;
        f.name = name;
        f.metavar = metavar;
        f.help = help;
        f.kind = Flag::kUint64;
        f.out_u64 = out;
        f.umin = min;
        f.umax = max;
        flags_.push_back(std::move(f));
    }

    /** Free-form string value (paths, prefixes). */
    void
    add_string(const char* name, const char* metavar, const char* help,
               std::string* out)
    {
        Flag f;
        f.name = name;
        f.metavar = metavar;
        f.help = help;
        f.kind = Flag::kString;
        f.out_string = out;
        flags_.push_back(std::move(f));
    }

    /** Generated from the registry; --help is appended implicitly. */
    void
    print_usage(const std::string& program, std::ostream& os) const
    {
        os << "usage: " << program << " [options]\n";
        if (!summary_.empty())
            os << "  " << summary_ << "\n";
        for (const Flag& f : flags_)
            print_flag(os, f.name, f.metavar, f.help);
        print_flag(os, "--help", "", "show this message and exit");
    }

    /**
     * Strict parse: every argv element must be a registered flag (with
     * its value where one is declared).  Errors exit 2 after printing
     * the reason and the usage block to stderr; --help exits 0.
     */
    void
    parse(int argc, char** argv)
    {
        const std::string program =
            program_name(argc > 0 ? argv[0] : nullptr);
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--help") == 0) {
                print_usage(program, std::cout);
                std::exit(0);
            }
            const Flag* flag = find(argv[i]);
            if (flag == nullptr)
                die(program, std::string("unknown option '") +
                                 argv[i] + "'");
            if (flag->kind == Flag::kBool) {
                *flag->out_bool = flag->bool_value;
                continue;
            }
            if (i + 1 >= argc)
                die(program, flag->name + " requires a value");
            const char* value = argv[++i];
            switch (flag->kind) {
              case Flag::kInt: {
                long long v = 0;
                if (!parse_ll(value, v) || v < flag->min ||
                    v > flag->max) {
                    die(program, flag->name + " expects an integer in ["
                                     + std::to_string(flag->min) + ", "
                                     + std::to_string(flag->max)
                                     + "], got '" + value + "'");
                }
                *flag->out_int = static_cast<int>(v);
                break;
              }
              case Flag::kUint64: {
                std::uint64_t v = 0;
                if (!parse_u64(value, v) || v < flag->umin ||
                    v > flag->umax) {
                    die(program, flag->name +
                                     " expects an unsigned integer >= "
                                     + std::to_string(flag->umin)
                                     + ", got '" + value + "'");
                }
                *flag->out_u64 = v;
                break;
              }
              case Flag::kString:
                *flag->out_string = value;
                break;
              case Flag::kBool:
                break;  // handled above
            }
        }
    }

  private:
    struct Flag
    {
        std::string name;
        std::string metavar;
        std::string help;
        enum Kind { kBool, kInt, kUint64, kString } kind = kBool;
        bool* out_bool = nullptr;
        bool bool_value = true;
        int* out_int = nullptr;
        long long min = 0;
        long long max = 0;
        std::uint64_t* out_u64 = nullptr;
        std::uint64_t umin = 0;
        std::uint64_t umax = 0;
        std::string* out_string = nullptr;
    };

    const Flag*
    find(const char* arg) const
    {
        for (const Flag& f : flags_)
            if (f.name == arg)
                return &f;
        return nullptr;
    }

    [[noreturn]] void
    die(const std::string& program, const std::string& message) const
    {
        std::cerr << program << ": " << message << "\n";
        print_usage(program, std::cerr);
        std::exit(2);
    }

    /** "  --name METAVAR    help", with embedded '\n' re-indented. */
    static void
    print_flag(std::ostream& os, const std::string& name,
               const std::string& metavar, const std::string& help)
    {
        constexpr std::size_t kHelpColumn = 22;
        std::string head = "  " + name;
        if (!metavar.empty())
            head += " " + metavar;
        if (head.size() + 2 <= kHelpColumn)
            head.append(kHelpColumn - head.size(), ' ');
        else
            head += "  ";
        os << head;
        for (char c : help) {
            os << c;
            if (c == '\n')
                os << std::string(kHelpColumn, ' ');
        }
        os << "\n";
    }

    static bool
    parse_ll(const char* s, long long& out)
    {
        char* end = nullptr;
        errno = 0;
        long long v = std::strtoll(s, &end, 10);
        if (end == s || *end != '\0' || errno == ERANGE)
            return false;
        out = v;
        return true;
    }

    static bool
    parse_u64(const char* s, std::uint64_t& out)
    {
        if (s[0] == '-')
            return false;  // strtoull silently negates
        char* end = nullptr;
        errno = 0;
        unsigned long long v = std::strtoull(s, &end, 10);
        if (end == s || *end != '\0' || errno == ERANGE)
            return false;
        out = v;
        return true;
    }

    std::string summary_;
    std::vector<Flag> flags_;
};

}  // namespace cli
}  // namespace hoard

#endif  // HOARD_COMMON_CLI_H_
