/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * The workloads and the simulator need reproducible randomness that is
 * independent of the C++ standard library implementation, so speedup
 * tables are bit-identical across runs and toolchains.  xoroshiro-style
 * splitmix64 core; small, fast, and good enough for workload shaping.
 */

#ifndef HOARD_COMMON_RNG_H_
#define HOARD_COMMON_RNG_H_

#include <cstdint>

#include "common/failure.h"

namespace hoard {
namespace detail {

/** splitmix64: deterministic 64-bit PRNG with full-period state. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state_(seed)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        HOARD_DCHECK(bound > 0);
        // Multiply-shift trick: unbiased enough for workload generation.
        return (static_cast<unsigned __int128>(next()) * bound) >> 64;
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        HOARD_DCHECK(lo <= hi);
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    std::uint64_t state_;
};

}  // namespace detail
}  // namespace hoard

#endif  // HOARD_COMMON_RNG_H_
