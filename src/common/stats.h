/**
 * @file
 * Thread-safe statistic counters and high-water-mark gauges.
 *
 * Every allocator in this repository exports the same AllocatorStats
 * block; the fragmentation and blowup tables (TBL-frag, TBL-blowup in
 * DESIGN.md) are computed straight from these gauges.
 */

#ifndef HOARD_COMMON_STATS_H_
#define HOARD_COMMON_STATS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/failure.h"

namespace hoard {
namespace detail {

/**
 * Monotonic event counter.  Relaxed ordering: counters are diagnostics,
 * never synchronization.
 */
class Counter
{
  public:
    void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
    std::uint64_t get() const { return v_.load(std::memory_order_relaxed); }
    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> v_{0};
};

/**
 * Signed level gauge with a high-water mark.  add()/sub() move the
 * current level; peak() is maintained with a CAS-max loop.
 */
class Gauge
{
  public:
    void
    add(std::uint64_t n)
    {
        std::uint64_t now =
            cur_.fetch_add(n, std::memory_order_relaxed) + n;
        std::uint64_t seen = peak_.load(std::memory_order_relaxed);
        while (now > seen &&
               !peak_.compare_exchange_weak(seen, now,
                                            std::memory_order_relaxed)) {
        }
    }

    /**
     * Lowers the level by @p n.  Subtracting more than the current
     * level would wrap the unsigned counter and poison every derived
     * metric (fragmentation, footprint tables), so debug builds treat
     * it as a caller bug.  The check reads the level racily; under
     * concurrent mutation it can only under-report, never false-fire
     * on a balanced add/sub history.
     */
    void
    sub(std::uint64_t n)
    {
        HOARD_DCHECK(n <= cur_.load(std::memory_order_relaxed));
        cur_.fetch_sub(n, std::memory_order_relaxed);
    }

    std::uint64_t current() const { return cur_.load(std::memory_order_relaxed); }
    std::uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }

    /**
     * Overwrites the level (peak still ratchets up).  For single-
     * threaded repair paths — the post-fork child recomputes gauges
     * from the heap structures after add/sub histories tore across
     * fork() — not for concurrent accounting.
     */
    void
    set(std::uint64_t n)
    {
        cur_.store(n, std::memory_order_relaxed);
        std::uint64_t seen = peak_.load(std::memory_order_relaxed);
        while (n > seen &&
               !peak_.compare_exchange_weak(seen, n,
                                            std::memory_order_relaxed)) {
        }
    }

    void
    reset()
    {
        cur_.store(0, std::memory_order_relaxed);
        peak_.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> cur_{0};
    std::atomic<std::uint64_t> peak_{0};
};

/** Statistics block shared by every allocator implementation. */
struct AllocatorStats
{
    Counter allocs;              ///< calls to allocate()
    Counter frees;               ///< calls to deallocate()
    Gauge requested_bytes;       ///< exact bytes the client asked for
    Gauge in_use_bytes;          ///< block-rounded bytes currently live (U)
    Gauge held_bytes;            ///< bytes held in superblocks (A)
    Gauge committed_bytes;       ///< OS-committed bytes (RSS ground truth);
                                 ///< held_bytes == committed + purged
    Gauge purged_bytes;          ///< held bytes whose pages were returned
                                 ///< to the OS by the purge pass
    Gauge cached_bytes;          ///< bytes parked in thread caches
    Counter superblock_allocs;   ///< fresh superblocks fetched from the OS
    Counter superblock_transfers;///< per-proc heap -> global heap moves
    Counter global_fetches;      ///< superblocks pulled from the global heap
    Counter huge_allocs;         ///< allocations > S/2 served directly
    Counter oom_reclaims;        ///< map failures answered by reclaiming
    Counter oom_failures;        ///< allocations that failed even after reclaim
    Counter remote_frees;        ///< frees pushed to a busy owner's queue
    Counter remote_drains;       ///< blocks drained from remote queues
    Counter batch_refills;       ///< magazine refills (one lock each)
    Counter batch_flushes;       ///< magazine spills/flushes (batched)
    Counter global_bin_hits;     ///< fetches served by a per-class global bin
    Counter global_bin_misses;   ///< bin probes that found the class empty
    Counter cache_pushes;        ///< empty superblocks pushed to the reuse cache
    Counter cache_pops;          ///< empty superblocks popped from the reuse cache
    Counter purge_passes;        ///< purge sweeps over idle superblocks
    Counter purged_superblocks;  ///< superblock payloads decommitted by purge
    Counter revived_superblocks; ///< purged superblocks put back into service
    Counter bad_free_wild;       ///< frees of pointers outside any superblock
    Counter bad_free_foreign;    ///< frees of another allocator's memory
    Counter bad_free_interior;   ///< frees of misaligned/interior pointers
    Counter bad_free_double;     ///< frees of blocks already free
    Counter bg_wakeups;          ///< background-worker passes started
    Counter bg_refills;          ///< superblocks the worker formatted into bins
    Counter bg_drains;           ///< blocks the worker settled from remote queues
    Counter bg_precommits;       ///< spans the worker pre-committed in the provider
    Counter bg_purges;           ///< purge passes run on the worker's cadence

    /**
     * Fragmentation as the paper reports it: maximum memory held by the
     * allocator divided by maximum memory in use by the program.
     */
    double
    fragmentation() const
    {
        std::uint64_t u = in_use_bytes.peak();
        return u == 0 ? 1.0
                      : static_cast<double>(held_bytes.peak()) /
                            static_cast<double>(u);
    }
};

}  // namespace detail
}  // namespace hoard

#endif  // HOARD_COMMON_STATS_H_
