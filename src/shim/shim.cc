/**
 * @file
 * libhoard.so: the LD_PRELOAD drop-in shim (ROADMAP item 1).
 *
 * Replaces the C allocation API for the whole process by *symbol
 * interposition*: this library defines malloc/free/calloc/... itself,
 * so the dynamic linker binds every PLT reference in the executable
 * and every shared library (glibc's own strdup/getline/asprintf
 * included) to these definitions.  No dlsym(RTLD_NEXT) chaining is
 * needed — every pointer the process frees was handed out here.  C++
 * operator new/delete are NOT defined here: libstdc++'s defaults call
 * malloc/free, which already land in this shim, and defining them in
 * a preloaded library would shadow programs that replace operator new
 * themselves.
 *
 * Robustness layers (docs/SHIM.md):
 *
 *  - **Bootstrap safety.**  The global Hoard instance is a leaked
 *    magic-static (core/facade.cc); constructing it allocates (heap
 *    tables, size-class tables) through operator new, which calls the
 *    malloc defined *here*.  Re-entering global_allocator() from
 *    inside its own construction would deadlock the magic-static
 *    guard, so every wrapper brackets its facade call with a
 *    per-thread depth counter, and any allocation arriving at depth
 *    > 0 is served from a static, lock-free bump arena instead.  Each
 *    arena block carries a small header recording its size, so
 *    realloc and malloc_usable_size work on bootstrap pointers; frees
 *    of arena pointers are recognized by address range and no-op'd
 *    (the arena is never reused, which also keeps it calloc-safe:
 *    every block is untouched BSS zeros).  The depth counter's TLS is
 *    initial-exec — the dynamic TLS model can itself call malloc on
 *    first access, which would recurse before the guard exists.
 *
 *  - **Fork safety.**  A constructor forces the singleton into
 *    existence and installs the pthread_atfork handlers
 *    (hoard_install_atfork) before main() runs, so a fork() from any
 *    thread — even one taken while sibling threads are mid-malloc —
 *    yields a child whose allocator locks are released and whose
 *    gauges are repaired.
 *
 *  - **Hardened free.**  Arbitrary pointers from the host program hit
 *    the validating free path (Config::hardened_free, on by default);
 *    HOARD_BAD_FREE=warn switches the process from abort-with-
 *    diagnostic to count-and-leak without a rebuild.  The shim
 *    additionally rejects invalid alignment arguments with errno
 *    rather than letting them reach the allocator's internal aborts.
 *
 * Known bounds (documented, not bugs): allocator-internal metadata
 * allocated while a wrapper is on the stack (magazine nodes, ~1-2 KiB
 * per new thread) also lands in the bump arena and is never
 * reclaimed, so the 8 MiB arena supports several thousand thread
 * creations; exceed it and malloc fails cleanly with ENOMEM.
 */

#include <cerrno>
#include <csignal>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include <unistd.h>

#include "core/facade.h"

namespace {

/// Re-entrancy depth of the calling thread: > 0 while a facade call
/// (or the singleton's construction) is on the stack.
__thread int t_depth __attribute__((tls_model("initial-exec"))) = 0;

struct DepthGuard
{
    DepthGuard() { ++t_depth; }
    ~DepthGuard() { --t_depth; }
};

/// @name Bootstrap bump arena.
/// @{

constexpr std::size_t kArenaBytes = 8u << 20;

/// 16-byte per-block header so realloc/usable_size work on arena
/// pointers; sits immediately before the returned pointer.
struct BootHeader
{
    std::size_t size;
    std::size_t reserved;
};
static_assert(sizeof(BootHeader) == 16, "headers must keep 16-alignment");

alignas(16) unsigned char g_arena[kArenaBytes];
std::atomic<std::size_t> g_arena_cursor{0};

bool
boot_owns(const void* p)
{
    auto addr = reinterpret_cast<std::uintptr_t>(p);
    auto base = reinterpret_cast<std::uintptr_t>(g_arena);
    return addr >= base && addr < base + kArenaBytes;
}

void*
boot_alloc(std::size_t size, std::size_t align)
{
    if (align < 16)
        align = 16;
    std::size_t need =
        sizeof(BootHeader) + (align - 16) + ((size + 15) & ~std::size_t{15});
    std::size_t off =
        g_arena_cursor.fetch_add(need, std::memory_order_relaxed);
    if (off + need > kArenaBytes || off + need < off) {
        errno = ENOMEM;
        return nullptr;
    }
    auto base = reinterpret_cast<std::uintptr_t>(g_arena) + off +
                sizeof(BootHeader);
    auto user = (base + align - 1) & ~(align - 1);
    auto* header = reinterpret_cast<BootHeader*>(user) - 1;
    header->size = size;
    return reinterpret_cast<void*>(user);
}

std::size_t
boot_size(const void* p)
{
    return (reinterpret_cast<const BootHeader*>(p) - 1)->size;
}

/// @}

bool
is_pow2(std::size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Largest alignment the allocator serves (S/2; facade contract). */
std::size_t
max_alignment()
{
    DepthGuard guard;  // may construct the singleton
    return hoard::global_allocator().config().superblock_bytes / 2;
}

std::size_t
page_bytes()
{
    long page = ::sysconf(_SC_PAGESIZE);
    return page > 0 ? static_cast<std::size_t>(page) : 4096;
}

void*
aligned_impl(std::size_t align, std::size_t size)
{
    if (!is_pow2(align)) {
        errno = EINVAL;
        return nullptr;
    }
    if (t_depth > 0)
        return boot_alloc(size == 0 ? 1 : size, align);
    if (align > max_alignment()) {
        // Valid but unservable (> S/2): degrade as exhaustion, not as
        // an invalid argument.
        errno = ENOMEM;
        return nullptr;
    }
    DepthGuard guard;
    void* p = hoard::hoard_aligned_alloc(align, size);
    if (p == nullptr)
        errno = ENOMEM;
    return p;
}

/// @name Heap-profile dumping (docs/PROFILING.md).
/// Armed when HOARD_PROFILE_RATE enables the profiler: SIGUSR2 dumps
/// a pprof profile on demand, and HOARD_PROFILE_DUMP=<prefix> adds an
/// exit-time dump plus a leak report.  Every dump body runs under a
/// DepthGuard so its own allocations (ofstream buffers, the pprof
/// string) land in the bootstrap arena and never re-enter the
/// allocator being profiled — which is also what makes the SIGUSR2
/// handler safe against the "signal arrived inside malloc" case.
/// @{

char g_profile_prefix[224];
std::atomic<int> g_profile_seq{0};

/** Writes profile (and optionally the leak report) under @p prefix;
    filenames carry the pid so forked children never collide. */
void
profile_dump(bool with_leak_report)
{
    DepthGuard guard;
    const int seq =
        g_profile_seq.fetch_add(1, std::memory_order_relaxed);
    const long pid = static_cast<long>(::getpid());
    char path[256];
    std::snprintf(path, sizeof path, "%s.%ld.%d.pb", g_profile_prefix,
                  pid, seq);
    {
        std::ofstream out(path, std::ios::binary);
        if (out)
            hoard::hoard_write_heap_profile(out);
    }
    if (with_leak_report) {
        std::snprintf(path, sizeof path, "%s.%ld.leaks.txt",
                      g_profile_prefix, pid);
        std::ofstream out(path);
        if (out)
            hoard::hoard_write_leak_report(out);
    }
}

void
profile_sigusr2(int /* signo */)
{
    // Not strictly async-signal-safe (file I/O), but re-entry into the
    // allocator — the actual deadlock risk — is routed to the arena by
    // the DepthGuard inside.  Same trade every sampling profiler makes
    // for an on-demand dump signal.
    profile_dump(/*with_leak_report=*/false);
}

void
profile_atexit()
{
    profile_dump(/*with_leak_report=*/true);
}

/// @}

/** Exit-time timeline dump (HOARD_TIMELINE=<path>): the ofstream's
    own allocations ride the DepthGuard into the bootstrap arena, so
    the dump never re-enters the allocator it is sampling. */
void
timeline_atexit()
{
    DepthGuard guard;
    const char* path = std::getenv("HOARD_TIMELINE");
    if (path == nullptr || path[0] == '\0')
        return;
    std::ofstream out(path);
    if (out)
        hoard::hoard_write_timeline(out);
}

/** Forces the singleton alive and registers the atfork handlers
    before main() — bootstrap allocations go to the arena. */
__attribute__((constructor)) void
shim_init()
{
    DepthGuard guard;
    hoard::hoard_install_atfork();
    if (hoard::hoard_profiler() != nullptr) {
        const char* prefix = std::getenv("HOARD_PROFILE_DUMP");
        std::snprintf(g_profile_prefix, sizeof g_profile_prefix, "%s",
                      prefix != nullptr && prefix[0] != '\0'
                          ? prefix
                          : "hoard-profile");
        struct sigaction sa;
        std::memset(&sa, 0, sizeof sa);
        sa.sa_handler = &profile_sigusr2;
        sa.sa_flags = SA_RESTART;
        ::sigaction(SIGUSR2, &sa, nullptr);
        if (prefix != nullptr && prefix[0] != '\0')
            std::atexit(&profile_atexit);
    }
    const char* timeline = std::getenv("HOARD_TIMELINE");
    if (timeline != nullptr && timeline[0] != '\0')
        std::atexit(&timeline_atexit);
}

}  // namespace

extern "C" {

void*
malloc(std::size_t size) noexcept
{
    if (t_depth > 0)
        return boot_alloc(size, 16);
    DepthGuard guard;
    return hoard::hoard_malloc(size);
}

void
free(void* p) noexcept
{
    if (p == nullptr || boot_owns(p))
        return;
    DepthGuard guard;
    hoard::hoard_free(p);
}

void*
calloc(std::size_t count, std::size_t size) noexcept
{
    if (t_depth > 0) {
        if (size != 0 && count > SIZE_MAX / size) {
            errno = ENOMEM;
            return nullptr;
        }
        // Arena memory is untouched BSS — already zero, never reused.
        return boot_alloc(count * size, 16);
    }
    DepthGuard guard;
    return hoard::hoard_calloc(count, size);
}

void*
realloc(void* p, std::size_t size) noexcept
{
    if (p != nullptr && boot_owns(p)) {
        // Migrate out of the arena: copy, don't free (arena frees are
        // no-ops anyway).
        if (size == 0)
            return nullptr;
        void* fresh = malloc(size);
        if (fresh != nullptr) {
            std::size_t old = boot_size(p);
            std::memcpy(fresh, p, old < size ? old : size);
        }
        return fresh;
    }
    DepthGuard guard;
    return hoard::hoard_realloc(p, size);
}

void*
reallocarray(void* p, std::size_t count, std::size_t size) noexcept
{
    if (size != 0 && count > SIZE_MAX / size) {
        errno = ENOMEM;
        return nullptr;
    }
    return realloc(p, count * size);
}

void*
aligned_alloc(std::size_t align, std::size_t size) noexcept
{
    return aligned_impl(align, size);
}

void*
memalign(std::size_t align, std::size_t size) noexcept
{
    return aligned_impl(align, size);
}

int
posix_memalign(void** out, std::size_t align, std::size_t size) noexcept
{
    if (out == nullptr || !is_pow2(align) ||
        align % sizeof(void*) != 0)
        return EINVAL;
    void* p = aligned_impl(align, size);
    if (p == nullptr)
        return ENOMEM;
    *out = p;
    return 0;
}

void*
valloc(std::size_t size) noexcept
{
    return aligned_impl(page_bytes(), size);
}

void*
pvalloc(std::size_t size) noexcept
{
    std::size_t page = page_bytes();
    if (size > SIZE_MAX - (page - 1)) {
        errno = ENOMEM;
        return nullptr;
    }
    return aligned_impl(page, (size + page - 1) & ~(page - 1));
}

std::size_t
malloc_usable_size(void* p) noexcept
{
    if (p == nullptr)
        return 0;
    if (boot_owns(p))
        return boot_size(p);
    DepthGuard guard;
    return hoard::hoard_usable_size(p);
}

int
malloc_trim(std::size_t /* pad */) noexcept
{
    if (t_depth > 0)
        return 0;
    DepthGuard guard;
    return hoard::hoard_release_free_memory() > 0 ? 1 : 0;
}

}  // extern "C"
