/**
 * @file
 * Pure-private-heaps baseline (paper §2.1's "pure private heaps"
 * category: Cilk and the STL per-thread allocators).
 *
 * Each thread owns a heap; a freed block lands on the *freeing* thread's
 * free list regardless of which heap carved it.  That choice is what the
 * paper indicts: memory freed remotely can never be reused by its
 * producer, so a producer-consumer pair leaks the producer's superblocks
 * forever — unbounded blowup (TBL-blowup demonstrates it).  Superblocks
 * are bump-carved and never recycled or returned.
 */

#ifndef HOARD_BASELINES_PURE_PRIVATE_ALLOCATOR_H_
#define HOARD_BASELINES_PURE_PRIVATE_ALLOCATOR_H_

#include <cstddef>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "common/failure.h"
#include "common/stats.h"
#include "core/allocator.h"
#include "core/config.h"
#include "core/size_classes.h"
#include "core/superblock.h"
#include "os/page_provider.h"
#include "policy/cost_kind.h"

namespace hoard {
namespace baselines {

/** Private heaps without ownership: frees stay with the freeing thread. */
template <typename Policy>
class PurePrivateAllocator final : public Allocator
{
  public:
    explicit PurePrivateAllocator(
        const Config& config = Config(),
        os::PageProvider& provider = os::default_page_provider())
        : config_(validated(config)),
          provider_(provider),
          classes_(config_,
                   Superblock::payload_bytes_for(config_.superblock_bytes))
    {
        heaps_.reserve(static_cast<std::size_t>(config_.heap_count));
        for (int i = 0; i < config_.heap_count; ++i)
            heaps_.push_back(std::make_unique<PrivateHeap>(
                static_cast<std::size_t>(classes_.count())));
    }

    ~PurePrivateAllocator() override
    {
        for (auto& heap : heaps_) {
            for (Superblock* sb : heap->superblocks) {
                std::size_t bytes = sb->span_bytes();
                sb->~Superblock();
                provider_.unmap(sb, bytes);
            }
        }
    }

    PurePrivateAllocator(const PurePrivateAllocator&) = delete;
    PurePrivateAllocator& operator=(const PurePrivateAllocator&) = delete;

    void*
    allocate(std::size_t size) override
    {
        Policy::work(CostKind::malloc_base);
        int cls = classes_.class_for(size);
        if (cls == SizeClasses::kHuge)
            return allocate_huge(size);
        const std::size_t block_bytes = classes_.block_size(cls);

        PrivateHeap& heap = my_heap();
        std::lock_guard<typename Policy::Mutex> guard(heap.mutex);

        void* block;
        auto ci = static_cast<std::size_t>(cls);
        if (heap.free_lists[ci] != nullptr) {
            // Reuse whatever this thread freed, wherever it came from —
            // the source of passive false sharing in this design.
            block = heap.free_lists[ci];
            Policy::touch(block, sizeof(void*), false);
            heap.free_lists[ci] = *static_cast<void**>(block);
        } else {
            Superblock* sb = heap.bump_source[ci];
            if (sb == nullptr || sb->full()) {
                sb = fresh_superblock(cls, heap);
                if (sb == nullptr)
                    return nullptr;
                heap.bump_source[ci] = sb;
            }
            Policy::touch(sb, sizeof(Superblock), true);
            block = sb->allocate();
        }

        stats_.allocs.add();
        stats_.requested_bytes.add(size);
        stats_.in_use_bytes.add(block_bytes);
        return block;
    }

    void
    deallocate(void* p) override
    {
        if (p == nullptr)
            return;
        Policy::work(CostKind::free_base);
        Superblock* sb =
            Superblock::from_pointer(p, config_.superblock_bytes);
        if (sb->huge()) {
            deallocate_huge(sb);
            return;
        }

        // Push onto *my* free list; the carving superblock is not
        // consulted and its counters are never decremented.
        PrivateHeap& heap = my_heap();
        std::lock_guard<typename Policy::Mutex> guard(heap.mutex);
        auto ci = static_cast<std::size_t>(sb->size_class());
        Policy::touch(p, sizeof(void*), true);
        *static_cast<void**>(p) = heap.free_lists[ci];
        heap.free_lists[ci] = p;

        stats_.frees.add();
        stats_.in_use_bytes.sub(sb->block_bytes());
    }

    std::size_t
    usable_size(const void* p) const override
    {
        const Superblock* sb =
            Superblock::from_pointer(p, config_.superblock_bytes);
        return sb->huge() ? sb->huge_user_bytes() : sb->block_bytes();
    }

    const detail::AllocatorStats& stats() const override { return stats_; }
    const char* name() const override { return "private"; }

  private:
    struct PrivateHeap
    {
        explicit PrivateHeap(std::size_t num_classes)
            : free_lists(num_classes, nullptr),
              bump_source(num_classes, nullptr)
        {}

        typename Policy::Mutex mutex;
        std::vector<void*> free_lists;        ///< per class, LIFO
        std::vector<Superblock*> bump_source; ///< per class, current carve
        std::vector<Superblock*> superblocks; ///< everything ever mapped
    };

    static const Config&
    validated(const Config& config)
    {
        config.validate();
        return config;
    }

    PrivateHeap&
    my_heap()
    {
        int idx = Policy::thread_index() % config_.heap_count;
        return *heaps_[static_cast<std::size_t>(idx)];
    }

    Superblock*
    fresh_superblock(int cls, PrivateHeap& heap)
    {
        Policy::work(CostKind::os_map);
        Policy::work(CostKind::superblock_init);
        void* memory = provider_.map(config_.superblock_bytes,
                                     config_.superblock_bytes);
        if (memory == nullptr)
            return nullptr;
        Superblock* sb = Superblock::create(
            memory, config_.superblock_bytes, cls,
            static_cast<std::uint32_t>(classes_.block_size(cls)));
        sb->set_owner(&heap);
        heap.superblocks.push_back(sb);
        stats_.superblock_allocs.add();
        stats_.committed_bytes.add(config_.superblock_bytes);
        stats_.held_bytes.add(config_.superblock_bytes);
        return sb;
    }

    void*
    allocate_huge(std::size_t size)
    {
        Policy::work(CostKind::os_map);
        std::size_t offset = Superblock::header_bytes();
        if (size > std::numeric_limits<std::size_t>::max() - offset)
            return nullptr;  // span would overflow; report OOM
        std::size_t total = offset + size;
        void* memory = provider_.map(total, config_.superblock_bytes);
        if (memory == nullptr)
            return nullptr;
        Superblock::create_huge(memory, total, size);
        stats_.allocs.add();
        stats_.huge_allocs.add();
        stats_.requested_bytes.add(size);
        stats_.in_use_bytes.add(size);
        stats_.held_bytes.add(total);
        stats_.committed_bytes.add(total);
        return static_cast<char*>(memory) + offset;
    }

    void
    deallocate_huge(Superblock* sb)
    {
        Policy::work(CostKind::os_map);
        std::size_t total = sb->span_bytes();
        stats_.frees.add();
        stats_.in_use_bytes.sub(sb->huge_user_bytes());
        stats_.held_bytes.sub(total);
        stats_.committed_bytes.sub(total);
        sb->~Superblock();
        provider_.unmap(sb, total);
    }

    const Config config_;
    os::PageProvider& provider_;
    SizeClasses classes_;
    std::vector<std::unique_ptr<PrivateHeap>> heaps_;
    detail::AllocatorStats stats_;
};

}  // namespace baselines
}  // namespace hoard

#endif  // HOARD_BASELINES_PURE_PRIVATE_ALLOCATOR_H_
