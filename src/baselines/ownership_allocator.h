/**
 * @file
 * Private-heaps-with-ownership baseline (paper §2.1: the Ptmalloc /
 * MTmalloc / LKmalloc category).
 *
 * Model: one arena per heap slot, threads assigned by tid mod N.
 * Frees return blocks to the arena that carved them ("ownership"), so
 * unlike the pure-private baseline blowup is bounded — but by O(P),
 * not O(1): an arena never gives memory back, each arena retains its
 * own high-water mark, and empty superblocks are recycled only within
 * the arena, never across arenas or to the OS.
 *
 * This class's signature behaviors, per the paper: it scales (no
 * shared hot lock) and it avoids allocator-induced false sharing, but
 * (a) its footprint grows with P where Hoard's does not (TBL-blowup),
 * and (b) cross-thread frees — the Larson epochs — pay for locking the
 * remote owner's arena, which Hoard bounds via the global heap's
 * recycling instead of per-arena captivity.
 */

#ifndef HOARD_BASELINES_OWNERSHIP_ALLOCATOR_H_
#define HOARD_BASELINES_OWNERSHIP_ALLOCATOR_H_

#include <atomic>
#include <cstddef>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "common/failure.h"
#include "common/stats.h"
#include "core/allocator.h"
#include "core/config.h"
#include "core/heap.h"
#include "core/size_classes.h"
#include "core/superblock.h"
#include "os/page_provider.h"
#include "policy/cost_kind.h"

namespace hoard {
namespace baselines {

/** Arena allocator with ownership returns and trylock arena hopping. */
template <typename Policy>
class OwnershipAllocator final : public Allocator
{
  public:
    using Arena = HoardHeap<Policy>;

    explicit OwnershipAllocator(
        const Config& config = Config(),
        os::PageProvider& provider = os::default_page_provider())
        : config_(validated(config)),
          provider_(provider),
          classes_(config_,
                   Superblock::payload_bytes_for(config_.superblock_bytes)),
          narenas_((config_.heap_count + kThreadsPerArena - 1) /
                   kThreadsPerArena)
    {
        arenas_.reserve(static_cast<std::size_t>(narenas_));
        for (int i = 0; i < narenas_; ++i)
            arenas_.push_back(
                std::make_unique<Arena>(i, classes_.count()));
    }

    ~OwnershipAllocator() override
    {
        for (auto& arena : arenas_) {
            if (arena == nullptr)
                continue;
            for (auto& bin : arena->bins) {
                for (auto& group : bin.groups) {
                    while (Superblock* sb = group.pop_front())
                        unmap_superblock(sb);
                }
            }
            while (Superblock* sb = arena->empty_list.pop_front())
                unmap_superblock(sb);
        }
    }

    OwnershipAllocator(const OwnershipAllocator&) = delete;
    OwnershipAllocator& operator=(const OwnershipAllocator&) = delete;

    void*
    allocate(std::size_t size) override
    {
        Policy::work(CostKind::malloc_base);
        int cls = classes_.class_for(size);
        if (cls == SizeClasses::kHuge)
            return allocate_huge(size);
        const std::size_t block_bytes = classes_.block_size(cls);

        Arena& arena = lock_some_arena();
        // lock_some_arena returns with arena.mutex held.
        int probes = 0;
        Superblock* sb = arena.find_allocatable(cls, &probes);
        for (int i = 0; i < probes; ++i)
            Policy::work(CostKind::list_op);

        if (sb == nullptr) {
            if ((sb = arena.empty_list.pop_front()) != nullptr) {
                if (sb->size_class() != cls) {
                    Policy::work(CostKind::superblock_init);
                    sb->reformat(cls,
                                 static_cast<std::uint32_t>(block_bytes));
                }
            } else {
                sb = fresh_superblock(cls);
                if (sb == nullptr) {
                    arena.mutex.unlock();
                    return nullptr;
                }
            }
            sb->set_owner(&arena);
            arena.held += sb->span_bytes();
            arena.link(sb);
        }

        int old_group = sb->fullness_group();
        Policy::touch(sb, sizeof(Superblock), true);
        void* block = sb->allocate();
        arena.in_use += block_bytes;
        arena.relink(sb, old_group);
        Policy::work(CostKind::list_op);
        arena.mutex.unlock();

        stats_.allocs.add();
        stats_.requested_bytes.add(size);
        stats_.in_use_bytes.add(block_bytes);
        return block;
    }

    void
    deallocate(void* p) override
    {
        if (p == nullptr)
            return;
        Policy::work(CostKind::free_base);
        Superblock* sb =
            Superblock::from_pointer(p, config_.superblock_bytes);
        if (sb->huge()) {
            deallocate_huge(sb);
            return;
        }

        // Ownership: the block goes home.  Owners never change, so no
        // re-check loop is needed.
        auto* arena = static_cast<Arena*>(sb->owner());
        std::lock_guard<typename Arena::Mutex> guard(arena->mutex);
        int old_group = sb->fullness_group();
        Policy::touch(p, sizeof(void*), true);
        Policy::touch(sb, sizeof(Superblock), true);
        sb->deallocate(p);
        arena->in_use -= sb->block_bytes();
        arena->relink(sb, old_group);
        Policy::work(CostKind::list_op);
        stats_.frees.add();
        stats_.in_use_bytes.sub(sb->block_bytes());

        if (sb->empty()) {
            arena->unlink(sb, sb->fullness_group());
            arena->empty_list.push_front(sb);
        }
    }

    std::size_t
    usable_size(const void* p) const override
    {
        const Superblock* sb =
            Superblock::from_pointer(p, config_.superblock_bytes);
        return sb->huge() ? sb->huge_user_bytes() : sb->block_bytes();
    }

    const detail::AllocatorStats& stats() const override { return stats_; }
    const char* name() const override { return "ownership"; }

    /** Arenas in the pool (heap_count: one per thread slot). */
    int arena_count() const { return narenas_; }

  private:
    static const Config&
    validated(const Config& config)
    {
        config.validate();
        return config;
    }

    /** Locks and returns the calling thread's arena. */
    Arena&
    lock_some_arena()
    {
        auto idx = static_cast<std::size_t>(Policy::thread_index() %
                                            narenas_);
        arenas_[idx]->mutex.lock();
        return *arenas_[idx];
    }

    Superblock*
    fresh_superblock(int cls)
    {
        Policy::work(CostKind::os_map);
        Policy::work(CostKind::superblock_init);
        void* memory = provider_.map(config_.superblock_bytes,
                                     config_.superblock_bytes);
        if (memory == nullptr)
            return nullptr;
        stats_.superblock_allocs.add();
        stats_.committed_bytes.add(config_.superblock_bytes);
        stats_.held_bytes.add(config_.superblock_bytes);
        return Superblock::create(
            memory, config_.superblock_bytes, cls,
            static_cast<std::uint32_t>(classes_.block_size(cls)));
    }

    void*
    allocate_huge(std::size_t size)
    {
        Policy::work(CostKind::os_map);
        std::size_t offset = Superblock::header_bytes();
        if (size > std::numeric_limits<std::size_t>::max() - offset)
            return nullptr;  // span would overflow; report OOM
        std::size_t total = offset + size;
        void* memory = provider_.map(total, config_.superblock_bytes);
        if (memory == nullptr)
            return nullptr;
        Superblock::create_huge(memory, total, size);
        stats_.allocs.add();
        stats_.huge_allocs.add();
        stats_.requested_bytes.add(size);
        stats_.in_use_bytes.add(size);
        stats_.held_bytes.add(total);
        stats_.committed_bytes.add(total);
        return static_cast<char*>(memory) + offset;
    }

    void
    deallocate_huge(Superblock* sb)
    {
        Policy::work(CostKind::os_map);
        std::size_t total = sb->span_bytes();
        stats_.frees.add();
        stats_.in_use_bytes.sub(sb->huge_user_bytes());
        stats_.held_bytes.sub(total);
        stats_.committed_bytes.sub(total);
        sb->~Superblock();
        provider_.unmap(sb, total);
    }

    void
    unmap_superblock(Superblock* sb)
    {
        std::size_t bytes = sb->span_bytes();
        sb->~Superblock();
        provider_.unmap(sb, bytes);
    }

    /** Threads per arena (1: each thread slot owns an arena). */
    static constexpr int kThreadsPerArena = 1;

    const Config config_;
    os::PageProvider& provider_;
    SizeClasses classes_;
    const int narenas_;
    std::vector<std::unique_ptr<Arena>> arenas_;
    detail::AllocatorStats stats_;
};

}  // namespace baselines
}  // namespace hoard

#endif  // HOARD_BASELINES_OWNERSHIP_ALLOCATOR_H_
