/**
 * @file
 * Factory over Hoard and all baseline allocators, so the benchmark
 * harness and the conformance tests can sweep the full taxonomy
 * (paper Table 1) with one loop.
 */

#ifndef HOARD_BASELINES_FACTORY_H_
#define HOARD_BASELINES_FACTORY_H_

#include <array>
#include <memory>

#include "baselines/ownership_allocator.h"
#include "baselines/pure_private_allocator.h"
#include "baselines/serial_allocator.h"
#include "core/allocator.h"
#include "core/config.h"
#include "core/hoard_allocator.h"
#include "os/page_provider.h"

namespace hoard {
namespace baselines {

/** The allocator taxonomy of the paper's Table 1. */
enum class AllocatorKind
{
    hoard,         ///< the paper's contribution
    serial,        ///< single heap + single lock (Solaris malloc class)
    pure_private,  ///< private heaps, no ownership (Cilk/STL class)
    ownership,     ///< arenas with ownership (Ptmalloc/MTmalloc class)
};

/** All kinds, in the column order the benchmark tables print. */
inline constexpr std::array<AllocatorKind, 4> kAllKinds = {
    AllocatorKind::hoard,
    AllocatorKind::serial,
    AllocatorKind::pure_private,
    AllocatorKind::ownership,
};

/** Stable short name (matches Allocator::name()). */
inline const char*
to_string(AllocatorKind kind)
{
    switch (kind) {
      case AllocatorKind::hoard:
        return "hoard";
      case AllocatorKind::serial:
        return "serial";
      case AllocatorKind::pure_private:
        return "private";
      case AllocatorKind::ownership:
        return "ownership";
    }
    return "?";
}

/** Builds an allocator of @p kind under execution policy @p Policy. */
template <typename Policy>
std::unique_ptr<Allocator>
make_allocator(AllocatorKind kind, const Config& config = Config(),
               os::PageProvider& provider = os::default_page_provider())
{
    switch (kind) {
      case AllocatorKind::hoard:
        return std::make_unique<HoardAllocator<Policy>>(config, provider);
      case AllocatorKind::serial:
        return std::make_unique<SerialAllocator<Policy>>(config, provider);
      case AllocatorKind::pure_private:
        return std::make_unique<PurePrivateAllocator<Policy>>(config,
                                                              provider);
      case AllocatorKind::ownership:
        return std::make_unique<OwnershipAllocator<Policy>>(config,
                                                            provider);
    }
    HOARD_PANIC("unknown allocator kind");
}

}  // namespace baselines
}  // namespace hoard

#endif  // HOARD_BASELINES_FACTORY_H_
