/**
 * @file
 * Serial baseline: one heap, one lock (paper §2, "serial single heap" —
 * the category of Solaris malloc, the allocator the paper's speedup
 * figures show collapsing under concurrency).
 *
 * Reuses Hoard's superblock machinery so the memory layout and per-op
 * work match; what differs is exactly what the taxonomy says: every
 * thread funnels through a single mutex, and adjacent blocks from one
 * superblock are handed to different threads (active false sharing).
 */

#ifndef HOARD_BASELINES_SERIAL_ALLOCATOR_H_
#define HOARD_BASELINES_SERIAL_ALLOCATOR_H_

#include <cstddef>
#include <limits>
#include <memory>
#include <mutex>

#include "common/failure.h"
#include "common/stats.h"
#include "core/allocator.h"
#include "core/config.h"
#include "core/heap.h"
#include "core/size_classes.h"
#include "core/superblock.h"
#include "os/page_provider.h"
#include "policy/cost_kind.h"

namespace hoard {
namespace baselines {

/** Single-heap, single-lock allocator. */
template <typename Policy>
class SerialAllocator final : public Allocator
{
  public:
    explicit SerialAllocator(
        const Config& config = Config(),
        os::PageProvider& provider = os::default_page_provider())
        : config_(validated(config)),
          provider_(provider),
          classes_(config_,
                   Superblock::payload_bytes_for(config_.superblock_bytes)),
          heap_(0, classes_.count())
    {}

    ~SerialAllocator() override { release_everything(); }

    SerialAllocator(const SerialAllocator&) = delete;
    SerialAllocator& operator=(const SerialAllocator&) = delete;

    void*
    allocate(std::size_t size) override
    {
        Policy::work(CostKind::malloc_base);
        int cls = classes_.class_for(size);
        if (cls == SizeClasses::kHuge)
            return allocate_huge(size);

        const std::size_t block_bytes = classes_.block_size(cls);
        std::lock_guard<typename HoardHeap<Policy>::Mutex> guard(heap_.mutex);

        int probes = 0;
        Superblock* sb = heap_.find_allocatable(cls, &probes);
        for (int i = 0; i < probes; ++i)
            Policy::work(CostKind::list_op);

        if (sb == nullptr) {
            if ((sb = heap_.empty_list.pop_front()) != nullptr) {
                if (sb->size_class() != cls) {
                    Policy::work(CostKind::superblock_init);
                    sb->reformat(cls,
                                 static_cast<std::uint32_t>(block_bytes));
                }
            } else {
                sb = fresh_superblock(cls);
                if (sb == nullptr)
                    return nullptr;
            }
            sb->set_owner(&heap_);
            heap_.held += sb->span_bytes();
            heap_.link(sb);
        }

        int old_group = sb->fullness_group();
        Policy::touch(sb, sizeof(Superblock), true);
        void* block = sb->allocate();
        heap_.in_use += block_bytes;
        heap_.relink(sb, old_group);
        Policy::work(CostKind::list_op);

        stats_.allocs.add();
        stats_.requested_bytes.add(size);
        stats_.in_use_bytes.add(block_bytes);
        return block;
    }

    void
    deallocate(void* p) override
    {
        if (p == nullptr)
            return;
        Policy::work(CostKind::free_base);
        Superblock* sb =
            Superblock::from_pointer(p, config_.superblock_bytes);
        if (sb->huge()) {
            deallocate_huge(sb);
            return;
        }

        std::lock_guard<typename HoardHeap<Policy>::Mutex> guard(heap_.mutex);
        int old_group = sb->fullness_group();
        Policy::touch(p, sizeof(void*), true);
        Policy::touch(sb, sizeof(Superblock), true);
        sb->deallocate(p);
        heap_.in_use -= sb->block_bytes();
        stats_.in_use_bytes.sub(sb->block_bytes());
        heap_.relink(sb, old_group);
        Policy::work(CostKind::list_op);
        stats_.frees.add();

        if (sb->empty()) {
            heap_.unlink(sb, sb->fullness_group());
            heap_.empty_list.push_front(sb);
        }
    }

    std::size_t
    usable_size(const void* p) const override
    {
        const Superblock* sb =
            Superblock::from_pointer(p, config_.superblock_bytes);
        return sb->huge() ? sb->huge_user_bytes() : sb->block_bytes();
    }

    const detail::AllocatorStats& stats() const override { return stats_; }
    const char* name() const override { return "serial"; }

  private:
    static const Config&
    validated(const Config& config)
    {
        config.validate();
        return config;
    }

    Superblock*
    fresh_superblock(int cls)
    {
        Policy::work(CostKind::os_map);
        Policy::work(CostKind::superblock_init);
        void* memory = provider_.map(config_.superblock_bytes,
                                     config_.superblock_bytes);
        if (memory == nullptr)
            return nullptr;
        stats_.superblock_allocs.add();
        stats_.committed_bytes.add(config_.superblock_bytes);
        stats_.held_bytes.add(config_.superblock_bytes);
        return Superblock::create(
            memory, config_.superblock_bytes, cls,
            static_cast<std::uint32_t>(classes_.block_size(cls)));
    }

    void*
    allocate_huge(std::size_t size)
    {
        Policy::work(CostKind::os_map);
        std::size_t offset = Superblock::header_bytes();
        if (size > std::numeric_limits<std::size_t>::max() - offset)
            return nullptr;  // span would overflow; report OOM
        std::size_t total = offset + size;
        void* memory = provider_.map(total, config_.superblock_bytes);
        if (memory == nullptr)
            return nullptr;
        Superblock::create_huge(memory, total, size);
        stats_.allocs.add();
        stats_.huge_allocs.add();
        stats_.requested_bytes.add(size);
        stats_.in_use_bytes.add(size);
        stats_.held_bytes.add(total);
        stats_.committed_bytes.add(total);
        return static_cast<char*>(memory) + offset;
    }

    void
    deallocate_huge(Superblock* sb)
    {
        Policy::work(CostKind::os_map);
        std::size_t total = sb->span_bytes();
        stats_.frees.add();
        stats_.in_use_bytes.sub(sb->huge_user_bytes());
        stats_.held_bytes.sub(total);
        stats_.committed_bytes.sub(total);
        sb->~Superblock();
        provider_.unmap(sb, total);
    }

    void
    release_everything()
    {
        for (auto& bin : heap_.bins) {
            for (auto& group : bin.groups) {
                while (Superblock* sb = group.pop_front()) {
                    std::size_t bytes = sb->span_bytes();
                    sb->~Superblock();
                    provider_.unmap(sb, bytes);
                }
            }
        }
        while (Superblock* sb = heap_.empty_list.pop_front()) {
            std::size_t bytes = sb->span_bytes();
            sb->~Superblock();
            provider_.unmap(sb, bytes);
        }
    }

    const Config config_;
    os::PageProvider& provider_;
    SizeClasses classes_;
    HoardHeap<Policy> heap_;
    detail::AllocatorStats stats_;
};

}  // namespace baselines
}  // namespace hoard

#endif  // HOARD_BASELINES_SERIAL_ALLOCATOR_H_
