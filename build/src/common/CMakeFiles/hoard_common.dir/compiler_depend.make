# Empty compiler generated dependencies file for hoard_common.
# This may be replaced when dependencies are built.
