file(REMOVE_RECURSE
  "CMakeFiles/hoard_common.dir/failure.cc.o"
  "CMakeFiles/hoard_common.dir/failure.cc.o.d"
  "libhoard_common.a"
  "libhoard_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hoard_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
