file(REMOVE_RECURSE
  "libhoard_common.a"
)
