# Empty dependencies file for hoard_os.
# This may be replaced when dependencies are built.
