# Empty compiler generated dependencies file for hoard_os.
# This may be replaced when dependencies are built.
