file(REMOVE_RECURSE
  "CMakeFiles/hoard_os.dir/page_provider.cc.o"
  "CMakeFiles/hoard_os.dir/page_provider.cc.o.d"
  "libhoard_os.a"
  "libhoard_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hoard_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
