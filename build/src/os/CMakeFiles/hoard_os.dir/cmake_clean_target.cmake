file(REMOVE_RECURSE
  "libhoard_os.a"
)
