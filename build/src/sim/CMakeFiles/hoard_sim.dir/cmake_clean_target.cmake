file(REMOVE_RECURSE
  "libhoard_sim.a"
)
