file(REMOVE_RECURSE
  "CMakeFiles/hoard_sim.dir/fiber.cc.o"
  "CMakeFiles/hoard_sim.dir/fiber.cc.o.d"
  "CMakeFiles/hoard_sim.dir/machine.cc.o"
  "CMakeFiles/hoard_sim.dir/machine.cc.o.d"
  "libhoard_sim.a"
  "libhoard_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hoard_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
