# Empty compiler generated dependencies file for hoard_sim.
# This may be replaced when dependencies are built.
