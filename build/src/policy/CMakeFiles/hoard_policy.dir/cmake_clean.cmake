file(REMOVE_RECURSE
  "CMakeFiles/hoard_policy.dir/native_policy.cc.o"
  "CMakeFiles/hoard_policy.dir/native_policy.cc.o.d"
  "libhoard_policy.a"
  "libhoard_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hoard_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
