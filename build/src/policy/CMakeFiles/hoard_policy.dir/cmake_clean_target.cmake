file(REMOVE_RECURSE
  "libhoard_policy.a"
)
