# Empty dependencies file for hoard_policy.
# This may be replaced when dependencies are built.
