# Empty compiler generated dependencies file for hoard_core.
# This may be replaced when dependencies are built.
