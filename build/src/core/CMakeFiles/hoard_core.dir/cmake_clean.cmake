file(REMOVE_RECURSE
  "CMakeFiles/hoard_core.dir/config.cc.o"
  "CMakeFiles/hoard_core.dir/config.cc.o.d"
  "CMakeFiles/hoard_core.dir/facade.cc.o"
  "CMakeFiles/hoard_core.dir/facade.cc.o.d"
  "CMakeFiles/hoard_core.dir/size_classes.cc.o"
  "CMakeFiles/hoard_core.dir/size_classes.cc.o.d"
  "libhoard_core.a"
  "libhoard_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hoard_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
