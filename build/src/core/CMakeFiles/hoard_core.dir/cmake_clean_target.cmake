file(REMOVE_RECURSE
  "libhoard_core.a"
)
