file(REMOVE_RECURSE
  "libhoard_workloads.a"
)
