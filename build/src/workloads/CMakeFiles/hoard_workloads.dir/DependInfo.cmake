
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/synthetic.cc" "src/workloads/CMakeFiles/hoard_workloads.dir/synthetic.cc.o" "gcc" "src/workloads/CMakeFiles/hoard_workloads.dir/synthetic.cc.o.d"
  "/root/repo/src/workloads/trace.cc" "src/workloads/CMakeFiles/hoard_workloads.dir/trace.cc.o" "gcc" "src/workloads/CMakeFiles/hoard_workloads.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hoard_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hoard_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/hoard_os.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/hoard_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hoard_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
