# Empty dependencies file for hoard_workloads.
# This may be replaced when dependencies are built.
