file(REMOVE_RECURSE
  "CMakeFiles/hoard_workloads.dir/synthetic.cc.o"
  "CMakeFiles/hoard_workloads.dir/synthetic.cc.o.d"
  "CMakeFiles/hoard_workloads.dir/trace.cc.o"
  "CMakeFiles/hoard_workloads.dir/trace.cc.o.d"
  "libhoard_workloads.a"
  "libhoard_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hoard_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
