# Empty compiler generated dependencies file for hoard_metrics.
# This may be replaced when dependencies are built.
