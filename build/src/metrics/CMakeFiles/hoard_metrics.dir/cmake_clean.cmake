file(REMOVE_RECURSE
  "CMakeFiles/hoard_metrics.dir/speedup.cc.o"
  "CMakeFiles/hoard_metrics.dir/speedup.cc.o.d"
  "CMakeFiles/hoard_metrics.dir/table.cc.o"
  "CMakeFiles/hoard_metrics.dir/table.cc.o.d"
  "libhoard_metrics.a"
  "libhoard_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hoard_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
