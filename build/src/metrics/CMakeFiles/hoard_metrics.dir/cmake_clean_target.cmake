file(REMOVE_RECURSE
  "libhoard_metrics.a"
)
