file(REMOVE_RECURSE
  "CMakeFiles/fig_speedup_larson.dir/fig_speedup_larson.cc.o"
  "CMakeFiles/fig_speedup_larson.dir/fig_speedup_larson.cc.o.d"
  "fig_speedup_larson"
  "fig_speedup_larson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_speedup_larson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
