# Empty dependencies file for fig_speedup_larson.
# This may be replaced when dependencies are built.
