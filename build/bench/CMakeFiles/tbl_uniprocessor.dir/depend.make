# Empty dependencies file for tbl_uniprocessor.
# This may be replaced when dependencies are built.
