file(REMOVE_RECURSE
  "CMakeFiles/tbl_uniprocessor.dir/tbl_uniprocessor.cc.o"
  "CMakeFiles/tbl_uniprocessor.dir/tbl_uniprocessor.cc.o.d"
  "tbl_uniprocessor"
  "tbl_uniprocessor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_uniprocessor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
