# Empty dependencies file for fig_speedup_activefalse.
# This may be replaced when dependencies are built.
