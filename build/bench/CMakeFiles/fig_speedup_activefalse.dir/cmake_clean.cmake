file(REMOVE_RECURSE
  "CMakeFiles/fig_speedup_activefalse.dir/fig_speedup_activefalse.cc.o"
  "CMakeFiles/fig_speedup_activefalse.dir/fig_speedup_activefalse.cc.o.d"
  "fig_speedup_activefalse"
  "fig_speedup_activefalse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_speedup_activefalse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
