file(REMOVE_RECURSE
  "CMakeFiles/fig_speedup_bemsim.dir/fig_speedup_bemsim.cc.o"
  "CMakeFiles/fig_speedup_bemsim.dir/fig_speedup_bemsim.cc.o.d"
  "fig_speedup_bemsim"
  "fig_speedup_bemsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_speedup_bemsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
