# Empty dependencies file for fig_speedup_bemsim.
# This may be replaced when dependencies are built.
