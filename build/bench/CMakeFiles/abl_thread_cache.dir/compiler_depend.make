# Empty compiler generated dependencies file for abl_thread_cache.
# This may be replaced when dependencies are built.
