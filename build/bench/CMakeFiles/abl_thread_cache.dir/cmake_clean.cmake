file(REMOVE_RECURSE
  "CMakeFiles/abl_thread_cache.dir/abl_thread_cache.cc.o"
  "CMakeFiles/abl_thread_cache.dir/abl_thread_cache.cc.o.d"
  "abl_thread_cache"
  "abl_thread_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_thread_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
