file(REMOVE_RECURSE
  "CMakeFiles/tbl_taxonomy.dir/tbl_taxonomy.cc.o"
  "CMakeFiles/tbl_taxonomy.dir/tbl_taxonomy.cc.o.d"
  "tbl_taxonomy"
  "tbl_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
