# Empty compiler generated dependencies file for tbl_taxonomy.
# This may be replaced when dependencies are built.
