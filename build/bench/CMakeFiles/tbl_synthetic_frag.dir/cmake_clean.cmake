file(REMOVE_RECURSE
  "CMakeFiles/tbl_synthetic_frag.dir/tbl_synthetic_frag.cc.o"
  "CMakeFiles/tbl_synthetic_frag.dir/tbl_synthetic_frag.cc.o.d"
  "tbl_synthetic_frag"
  "tbl_synthetic_frag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_synthetic_frag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
