# Empty dependencies file for tbl_synthetic_frag.
# This may be replaced when dependencies are built.
