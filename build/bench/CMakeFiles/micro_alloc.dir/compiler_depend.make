# Empty compiler generated dependencies file for micro_alloc.
# This may be replaced when dependencies are built.
