# Empty dependencies file for abl_oversubscription.
# This may be replaced when dependencies are built.
