file(REMOVE_RECURSE
  "CMakeFiles/abl_oversubscription.dir/abl_oversubscription.cc.o"
  "CMakeFiles/abl_oversubscription.dir/abl_oversubscription.cc.o.d"
  "abl_oversubscription"
  "abl_oversubscription.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_oversubscription.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
