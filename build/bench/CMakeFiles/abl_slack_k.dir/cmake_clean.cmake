file(REMOVE_RECURSE
  "CMakeFiles/abl_slack_k.dir/abl_slack_k.cc.o"
  "CMakeFiles/abl_slack_k.dir/abl_slack_k.cc.o.d"
  "abl_slack_k"
  "abl_slack_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_slack_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
