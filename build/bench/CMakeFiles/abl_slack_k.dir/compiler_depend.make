# Empty compiler generated dependencies file for abl_slack_k.
# This may be replaced when dependencies are built.
