file(REMOVE_RECURSE
  "CMakeFiles/tbl_blowup.dir/tbl_blowup.cc.o"
  "CMakeFiles/tbl_blowup.dir/tbl_blowup.cc.o.d"
  "tbl_blowup"
  "tbl_blowup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_blowup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
