# Empty compiler generated dependencies file for tbl_blowup.
# This may be replaced when dependencies are built.
