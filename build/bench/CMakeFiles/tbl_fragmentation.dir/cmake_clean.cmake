file(REMOVE_RECURSE
  "CMakeFiles/tbl_fragmentation.dir/tbl_fragmentation.cc.o"
  "CMakeFiles/tbl_fragmentation.dir/tbl_fragmentation.cc.o.d"
  "tbl_fragmentation"
  "tbl_fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
