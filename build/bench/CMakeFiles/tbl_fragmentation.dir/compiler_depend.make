# Empty compiler generated dependencies file for tbl_fragmentation.
# This may be replaced when dependencies are built.
