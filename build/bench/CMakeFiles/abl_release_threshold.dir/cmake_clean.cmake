file(REMOVE_RECURSE
  "CMakeFiles/abl_release_threshold.dir/abl_release_threshold.cc.o"
  "CMakeFiles/abl_release_threshold.dir/abl_release_threshold.cc.o.d"
  "abl_release_threshold"
  "abl_release_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_release_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
