# Empty compiler generated dependencies file for abl_release_threshold.
# This may be replaced when dependencies are built.
