# Empty compiler generated dependencies file for fig_speedup_passivefalse.
# This may be replaced when dependencies are built.
