file(REMOVE_RECURSE
  "CMakeFiles/fig_speedup_passivefalse.dir/fig_speedup_passivefalse.cc.o"
  "CMakeFiles/fig_speedup_passivefalse.dir/fig_speedup_passivefalse.cc.o.d"
  "fig_speedup_passivefalse"
  "fig_speedup_passivefalse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_speedup_passivefalse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
