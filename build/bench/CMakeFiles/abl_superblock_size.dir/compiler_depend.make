# Empty compiler generated dependencies file for abl_superblock_size.
# This may be replaced when dependencies are built.
