file(REMOVE_RECURSE
  "CMakeFiles/abl_superblock_size.dir/abl_superblock_size.cc.o"
  "CMakeFiles/abl_superblock_size.dir/abl_superblock_size.cc.o.d"
  "abl_superblock_size"
  "abl_superblock_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_superblock_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
