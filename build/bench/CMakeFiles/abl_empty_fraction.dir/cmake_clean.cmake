file(REMOVE_RECURSE
  "CMakeFiles/abl_empty_fraction.dir/abl_empty_fraction.cc.o"
  "CMakeFiles/abl_empty_fraction.dir/abl_empty_fraction.cc.o.d"
  "abl_empty_fraction"
  "abl_empty_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_empty_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
