# Empty dependencies file for abl_empty_fraction.
# This may be replaced when dependencies are built.
