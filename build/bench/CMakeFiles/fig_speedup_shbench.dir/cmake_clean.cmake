file(REMOVE_RECURSE
  "CMakeFiles/fig_speedup_shbench.dir/fig_speedup_shbench.cc.o"
  "CMakeFiles/fig_speedup_shbench.dir/fig_speedup_shbench.cc.o.d"
  "fig_speedup_shbench"
  "fig_speedup_shbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_speedup_shbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
