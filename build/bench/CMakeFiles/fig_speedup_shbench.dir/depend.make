# Empty dependencies file for fig_speedup_shbench.
# This may be replaced when dependencies are built.
