# Empty dependencies file for fig_speedup_barneshut.
# This may be replaced when dependencies are built.
