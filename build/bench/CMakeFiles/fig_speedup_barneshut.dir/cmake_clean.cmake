file(REMOVE_RECURSE
  "CMakeFiles/fig_speedup_barneshut.dir/fig_speedup_barneshut.cc.o"
  "CMakeFiles/fig_speedup_barneshut.dir/fig_speedup_barneshut.cc.o.d"
  "fig_speedup_barneshut"
  "fig_speedup_barneshut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_speedup_barneshut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
