file(REMOVE_RECURSE
  "CMakeFiles/fig_speedup_threadtest.dir/fig_speedup_threadtest.cc.o"
  "CMakeFiles/fig_speedup_threadtest.dir/fig_speedup_threadtest.cc.o.d"
  "fig_speedup_threadtest"
  "fig_speedup_threadtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_speedup_threadtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
