# Empty compiler generated dependencies file for fig_speedup_threadtest.
# This may be replaced when dependencies are built.
