file(REMOVE_RECURSE
  "CMakeFiles/os_test.dir/os/fault_injection_test.cc.o"
  "CMakeFiles/os_test.dir/os/fault_injection_test.cc.o.d"
  "CMakeFiles/os_test.dir/os/meta_arena_test.cc.o"
  "CMakeFiles/os_test.dir/os/meta_arena_test.cc.o.d"
  "CMakeFiles/os_test.dir/os/page_provider_test.cc.o"
  "CMakeFiles/os_test.dir/os/page_provider_test.cc.o.d"
  "os_test"
  "os_test.pdb"
  "os_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
