
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/os/fault_injection_test.cc" "tests/CMakeFiles/os_test.dir/os/fault_injection_test.cc.o" "gcc" "tests/CMakeFiles/os_test.dir/os/fault_injection_test.cc.o.d"
  "/root/repo/tests/os/meta_arena_test.cc" "tests/CMakeFiles/os_test.dir/os/meta_arena_test.cc.o" "gcc" "tests/CMakeFiles/os_test.dir/os/meta_arena_test.cc.o.d"
  "/root/repo/tests/os/page_provider_test.cc" "tests/CMakeFiles/os_test.dir/os/page_provider_test.cc.o" "gcc" "tests/CMakeFiles/os_test.dir/os/page_provider_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metrics/CMakeFiles/hoard_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/hoard_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hoard_core.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/hoard_os.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/hoard_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hoard_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hoard_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
