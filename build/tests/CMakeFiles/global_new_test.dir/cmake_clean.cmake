file(REMOVE_RECURSE
  "CMakeFiles/global_new_test.dir/integration/global_new_test.cc.o"
  "CMakeFiles/global_new_test.dir/integration/global_new_test.cc.o.d"
  "global_new_test"
  "global_new_test.pdb"
  "global_new_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_new_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
