# Empty dependencies file for global_new_test.
# This may be replaced when dependencies are built.
