
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/config_test.cc" "tests/CMakeFiles/core_test.dir/core/config_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/config_test.cc.o.d"
  "/root/repo/tests/core/debug_allocator_test.cc" "tests/CMakeFiles/core_test.dir/core/debug_allocator_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/debug_allocator_test.cc.o.d"
  "/root/repo/tests/core/dump_test.cc" "tests/CMakeFiles/core_test.dir/core/dump_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/dump_test.cc.o.d"
  "/root/repo/tests/core/facade_test.cc" "tests/CMakeFiles/core_test.dir/core/facade_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/facade_test.cc.o.d"
  "/root/repo/tests/core/heap_test.cc" "tests/CMakeFiles/core_test.dir/core/heap_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/heap_test.cc.o.d"
  "/root/repo/tests/core/hoard_allocator_test.cc" "tests/CMakeFiles/core_test.dir/core/hoard_allocator_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/hoard_allocator_test.cc.o.d"
  "/root/repo/tests/core/hoard_invariant_test.cc" "tests/CMakeFiles/core_test.dir/core/hoard_invariant_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/hoard_invariant_test.cc.o.d"
  "/root/repo/tests/core/oom_paths_test.cc" "tests/CMakeFiles/core_test.dir/core/oom_paths_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/oom_paths_test.cc.o.d"
  "/root/repo/tests/core/pmr_resource_test.cc" "tests/CMakeFiles/core_test.dir/core/pmr_resource_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/pmr_resource_test.cc.o.d"
  "/root/repo/tests/core/sim_allocator_test.cc" "tests/CMakeFiles/core_test.dir/core/sim_allocator_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/sim_allocator_test.cc.o.d"
  "/root/repo/tests/core/size_classes_test.cc" "tests/CMakeFiles/core_test.dir/core/size_classes_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/size_classes_test.cc.o.d"
  "/root/repo/tests/core/stl_allocator_test.cc" "tests/CMakeFiles/core_test.dir/core/stl_allocator_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/stl_allocator_test.cc.o.d"
  "/root/repo/tests/core/superblock_param_test.cc" "tests/CMakeFiles/core_test.dir/core/superblock_param_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/superblock_param_test.cc.o.d"
  "/root/repo/tests/core/superblock_test.cc" "tests/CMakeFiles/core_test.dir/core/superblock_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/superblock_test.cc.o.d"
  "/root/repo/tests/core/thread_cache_test.cc" "tests/CMakeFiles/core_test.dir/core/thread_cache_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/thread_cache_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metrics/CMakeFiles/hoard_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/hoard_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hoard_core.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/hoard_os.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/hoard_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hoard_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hoard_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
