file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/config_test.cc.o"
  "CMakeFiles/core_test.dir/core/config_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/debug_allocator_test.cc.o"
  "CMakeFiles/core_test.dir/core/debug_allocator_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/dump_test.cc.o"
  "CMakeFiles/core_test.dir/core/dump_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/facade_test.cc.o"
  "CMakeFiles/core_test.dir/core/facade_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/heap_test.cc.o"
  "CMakeFiles/core_test.dir/core/heap_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/hoard_allocator_test.cc.o"
  "CMakeFiles/core_test.dir/core/hoard_allocator_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/hoard_invariant_test.cc.o"
  "CMakeFiles/core_test.dir/core/hoard_invariant_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/pmr_resource_test.cc.o"
  "CMakeFiles/core_test.dir/core/pmr_resource_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/sim_allocator_test.cc.o"
  "CMakeFiles/core_test.dir/core/sim_allocator_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/size_classes_test.cc.o"
  "CMakeFiles/core_test.dir/core/size_classes_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/stl_allocator_test.cc.o"
  "CMakeFiles/core_test.dir/core/stl_allocator_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/superblock_param_test.cc.o"
  "CMakeFiles/core_test.dir/core/superblock_param_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/superblock_test.cc.o"
  "CMakeFiles/core_test.dir/core/superblock_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/thread_cache_test.cc.o"
  "CMakeFiles/core_test.dir/core/thread_cache_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
