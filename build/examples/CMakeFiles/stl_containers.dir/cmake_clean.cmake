file(REMOVE_RECURSE
  "CMakeFiles/stl_containers.dir/stl_containers.cpp.o"
  "CMakeFiles/stl_containers.dir/stl_containers.cpp.o.d"
  "stl_containers"
  "stl_containers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stl_containers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
