# Empty compiler generated dependencies file for stl_containers.
# This may be replaced when dependencies are built.
