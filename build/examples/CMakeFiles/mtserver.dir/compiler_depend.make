# Empty compiler generated dependencies file for mtserver.
# This may be replaced when dependencies are built.
