file(REMOVE_RECURSE
  "CMakeFiles/mtserver.dir/mtserver.cpp.o"
  "CMakeFiles/mtserver.dir/mtserver.cpp.o.d"
  "mtserver"
  "mtserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
