# Empty compiler generated dependencies file for allocbench.
# This may be replaced when dependencies are built.
