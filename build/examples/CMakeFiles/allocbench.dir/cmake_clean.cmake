file(REMOVE_RECURSE
  "CMakeFiles/allocbench.dir/allocbench.cpp.o"
  "CMakeFiles/allocbench.dir/allocbench.cpp.o.d"
  "allocbench"
  "allocbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
