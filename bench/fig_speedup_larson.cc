/**
 * @file
 * FIG-larson (DESIGN.md §4): speedup of the Larson server benchmark
 * (random slot replacement + epoch-based thread churn, so frees cross
 * threads), 1..14 simulated processors.
 *
 * Paper shape to match: Hoard near-linear (the global heap recycles
 * orphaned superblocks); serial collapses; ownership trails Hoard
 * because every cross-thread free locks the remote owner's arena.
 */

#include "bench/fig_common.h"
#include "workloads/sim_bodies.h"

int
main(int argc, char** argv)
{
    using namespace hoard;
    bench::FigCli cli = bench::parse_cli(argc, argv);

    workloads::LarsonParams params;
    params.slots_per_thread = 800;
    // Long epochs: the original benchmark hands slots to a fresh thread
    // only after a long service interval, so the cache-warm handoff
    // cost amortizes (our simulator prices it in full).
    params.rounds_per_epoch = cli.quick ? 60000 : 120000;  // total, split
    params.epochs = 2;

    bench::emit_figure("FIG-larson: speedup vs processors",
                       bench::paper_options(cli),
                       workloads::larson_body(params), cli);
    return 0;
}
