/**
 * @file
 * ABL-K (DESIGN.md §6): sweep of the slack parameter K.
 *
 * K superblocks of slack are always tolerated before the emptiness
 * invariant forces a transfer (u_i >= a_i - K*S).  K exists to damp
 * superblock *bouncing*: with K=0, a heap whose few superblocks are
 * mostly empty shuttles one to the global heap on nearly every free
 * and fetches it back on the next allocation.  The workload here is a
 * deliberately sparse one — many size classes, tiny per-class working
 * set — the worst case for bouncing.
 */

#include <iostream>
#include <vector>

#include "core/hoard_allocator.h"
#include "metrics/table.h"
#include "policy/native_policy.h"
#include "workloads/native_bodies.h"
#include "workloads/runners.h"
#include "workloads/shbench.h"

int
main()
{
    using namespace hoard;
    const std::vector<std::size_t> slacks = {0, 2, 8, 16, 32, 64};
    const int nthreads = 4;

    // Sparse churn: small working set spread over many size classes.
    workloads::ShbenchParams sh;
    sh.operations = 60000;  // total
    sh.working_set = 24;    // tiny: heaps stay mostly empty
    sh.batch_interval = 0;  // no bursts, pure replacement churn

    std::cout << "# ABL-K: slack sweep (hoard only), sparse churn"
                 " workload\n";
    metrics::Table table({"K", "A-peak", "frag", "transfers",
                          "global fetches", "transfers/op"});

    for (std::size_t k : slacks) {
        Config config;
        config.slack_superblocks = k;
        config.heap_count = nthreads;

        HoardAllocator<NativePolicy> allocator(config);
        auto body = workloads::native_shbench_body(sh);
        workloads::native_run(nthreads, [&](int tid) {
            body(allocator, tid, nthreads);
        });

        const detail::AllocatorStats& stats = allocator.stats();
        double per_op =
            static_cast<double>(stats.superblock_transfers.get()) /
            static_cast<double>(stats.frees.get());
        table.begin_row();
        table.cell_u64(k);
        table.cell(metrics::format_bytes(stats.held_bytes.peak()));
        table.cell_double(stats.fragmentation());
        table.cell_u64(stats.superblock_transfers.get());
        table.cell_u64(stats.global_fetches.get());
        table.cell_double(per_op, 4);
    }
    table.print(std::cout);

    std::cout << "\n# Expected: small K bounces (transfers/op near its"
                 " ceiling); the cliff sits where K*S covers the"
                 " workload's per-class superblock spread (~15 partial"
                 " superblocks here), after which transfers vanish for"
                 " a bounded footprint cost.\n";
    return 0;
}
