/**
 * @file
 * ABL-cache (DESIGN.md §6): the thread-cache extension on/off.
 *
 * Caching is the post-paper direction (Hoard 3.x, tcmalloc): a bounded
 * per-thread block cache in front of the heaps.  This bench measures
 * what it buys on the virtual multiprocessor — heap-lock traffic and
 * makespan on threadtest and larson at P=8 — and what it costs in
 * retained memory, across cache sizes.
 */

#include <iostream>
#include <vector>

#include "core/hoard_allocator.h"
#include "metrics/speedup.h"
#include "metrics/table.h"
#include "policy/native_policy.h"
#include "workloads/native_bodies.h"
#include "workloads/runners.h"
#include "workloads/sim_bodies.h"

int
main()
{
    using namespace hoard;
    const std::vector<std::uint32_t> cache_sizes = {0, 8, 32, 128};
    const int nthreads = 4;

    workloads::ThreadtestParams tt;
    tt.total_objects = 16000;
    tt.iterations = 6;

    workloads::LarsonParams la;
    la.rounds_per_epoch = 60000;
    la.epochs = 2;

    std::cout << "# ABL-cache: thread-cache size sweep (hoard only)\n";
    metrics::Table table({"cache blocks", "threadtest P=8 makespan",
                          "larson P=8 makespan",
                          "larson contended locks", "cached peak",
                          "A-peak (native larson)"});

    for (std::uint32_t cache : cache_sizes) {
        Config config;
        config.thread_cache_blocks = cache;
        config.heap_count = nthreads;

        metrics::SpeedupOptions opt;
        opt.procs = {1, 8};
        opt.base_config = config;
        opt.kinds = {baselines::AllocatorKind::hoard};
        auto tt_sim = metrics::run_speedup_experiment(
            "abl-cache", opt, workloads::threadtest_body(tt));
        auto la_sim = metrics::run_speedup_experiment(
            "abl-cache", opt, workloads::larson_body(la));

        HoardAllocator<NativePolicy> allocator(config);
        auto body = workloads::native_larson_body(la);
        workloads::native_run(nthreads, [&](int tid) {
            body(allocator, tid, nthreads);
        });

        table.begin_row();
        table.cell_u64(cache);
        table.cell_u64(tt_sim.cells[1][0].makespan);
        table.cell_u64(la_sim.cells[1][0].makespan);
        table.cell_u64(la_sim.cells[1][0].lock_contentions);
        table.cell(metrics::format_bytes(
            allocator.stats().cached_bytes.peak()));
        table.cell(metrics::format_bytes(
            allocator.stats().held_bytes.peak()));
    }
    table.print(std::cout);

    std::cout << "\n# Expected: contended locks and makespans fall as"
                 " the cache absorbs the hot alloc/free pairs; the"
                 " retained-memory cost is bounded by cache size.\n";

    // Second axis: the refill/spill batch size N at a fixed cache cap.
    // Each magazine refill carves N blocks under one heap-lock
    // acquisition and each spill returns N the same way, so larger N
    // trades heap-lock traffic against batch-carve latency and a
    // bigger partial batch parked per thread.  batch 0 = the default
    // (cap / 2).
    const std::uint32_t fixed_cache = 64;
    const std::vector<std::uint32_t> batch_sizes = {0, 1, 4, 16, 32};

    std::cout << "\n# ABL-cache-batch: refill/spill batch sweep at cache"
              << " blocks = " << fixed_cache << "\n";
    metrics::Table batch_table(
        {"batch blocks", "threadtest P=8 makespan",
         "larson P=8 makespan", "larson contended locks",
         "batch refills (native larson)", "cached peak"});

    for (std::uint32_t batch : batch_sizes) {
        Config config;
        config.thread_cache_blocks = fixed_cache;
        config.thread_cache_batch = batch;
        config.heap_count = nthreads;

        metrics::SpeedupOptions opt;
        opt.procs = {1, 8};
        opt.base_config = config;
        opt.kinds = {baselines::AllocatorKind::hoard};
        auto tt_sim = metrics::run_speedup_experiment(
            "abl-cache-batch", opt, workloads::threadtest_body(tt));
        auto la_sim = metrics::run_speedup_experiment(
            "abl-cache-batch", opt, workloads::larson_body(la));

        HoardAllocator<NativePolicy> allocator(config);
        auto body = workloads::native_larson_body(la);
        workloads::native_run(nthreads, [&](int tid) {
            body(allocator, tid, nthreads);
        });
        allocator.flush_thread_caches();

        batch_table.begin_row();
        batch_table.cell_u64(batch);
        batch_table.cell_u64(tt_sim.cells[1][0].makespan);
        batch_table.cell_u64(la_sim.cells[1][0].makespan);
        batch_table.cell_u64(la_sim.cells[1][0].lock_contentions);
        batch_table.cell_u64(allocator.stats().batch_refills.get());
        batch_table.cell(metrics::format_bytes(
            allocator.stats().cached_bytes.peak()));
    }
    batch_table.print(std::cout);

    std::cout << "\n# Expected: heap-lock contention falls as the batch"
                 " grows (fewer, larger lock visits) until batches"
                 " overshoot what the workload recycles per thread.\n";
    return 0;
}
