/**
 * @file
 * FIG-shbench (DESIGN.md §4): speedup of the shbench proxy (mixed sizes
 * 1..1000 B, random lifetimes), 1..14 simulated processors.
 *
 * Paper shape to match: Hoard scales best; the gap to the serial
 * allocator is large (allocation-dominated); the private-heap classes
 * scale as well since lifetimes stay thread-local.
 */

#include "bench/fig_common.h"
#include "workloads/sim_bodies.h"

int
main(int argc, char** argv)
{
    using namespace hoard;
    bench::FigCli cli = bench::parse_cli(argc, argv);

    workloads::ShbenchParams params;
    params.operations = cli.quick ? 20000 : 60000;  // total, split over P
    params.working_set = 300;

    bench::emit_figure("FIG-shbench: speedup vs processors",
                       bench::paper_options(cli),
                       workloads::shbench_body(params), cli);
    return 0;
}
