/**
 * @file
 * TBL-frag (DESIGN.md §4): the paper's fragmentation table.
 *
 * For every benchmark, runs the workload natively (4 threads, real
 * mallocs) under each allocator and reports max bytes in use by the
 * program (U), max bytes held from the OS by the allocator (A), and
 * fragmentation A/U — the paper's definition.
 *
 * Paper shape to match: Hoard's fragmentation is modest (the paper
 * reports at most ~1.25 across its suite) and close to the serial
 * allocator's; the pure-private allocator's footprint balloons on
 * workloads with cross-thread frees (larson); ownership sits between.
 */

#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "baselines/factory.h"
#include "bench/fig_common.h"
#include "metrics/bench_report.h"
#include "metrics/table.h"
#include "workloads/native_bodies.h"
#include "workloads/runners.h"

namespace {

using namespace hoard;

struct NamedWorkload
{
    std::string name;
    workloads::NativeWorkloadBody body;
};

std::vector<NamedWorkload>
build_suite(bool quick)
{
    std::vector<NamedWorkload> suite;

    // Sizes chosen so peak live memory is in the megabytes: the
    // fragmentation ratio is only meaningful when live data dwarfs the
    // fixed per-heap slack (K*S per heap); tiny-footprint benchmarks
    // (the false-sharing pair keeps ~one object live) are excluded for
    // the same reason.
    workloads::ThreadtestParams tt;
    tt.total_objects = quick ? 30000 : 100000;
    tt.iterations = quick ? 3 : 8;
    tt.object_bytes = 64;
    suite.push_back({"threadtest", workloads::native_threadtest_body(tt)});

    workloads::ShbenchParams sh;
    sh.operations = quick ? 40000 : 120000;
    sh.working_set = quick ? 2000 : 6000;
    suite.push_back({"shbench", workloads::native_shbench_body(sh)});

    workloads::LarsonParams la;
    la.slots_per_thread = quick ? 2000 : 5000;
    la.rounds_per_epoch = quick ? 20000 : 60000;
    la.epochs = 3;
    suite.push_back({"larson", workloads::native_larson_body(la)});

    workloads::BemSimParams be;
    be.phases = 2;
    be.total_panels = quick ? 16 : 32;
    be.elements_per_panel = quick ? 400 : 800;
    suite.push_back({"BEM-proxy", workloads::native_bemsim_body(be)});

    workloads::BarnesHutParams bh;
    bh.total_systems = 8;
    bh.bodies_per_system = quick ? 400 : 1200;
    suite.push_back({"barnes-hut", workloads::native_barneshut_body(bh)});

    return suite;
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::FigCli cli = bench::parse_cli(argc, argv);
    const bool quick = cli.quick;
    const int nthreads = 4;
    metrics::BenchReport report(cli.bench_name, quick);
    report.set_title("TBL-frag: fragmentation A/U per benchmark");

    std::cout << "# TBL-frag: max in use (U), max held (A),"
                 " fragmentation A/U per benchmark\n";
    std::cout << "# native run, " << nthreads << " threads\n";

    std::vector<std::string> header = {"benchmark"};
    for (auto kind : baselines::kAllKinds) {
        header.push_back(std::string(baselines::to_string(kind)) +
                         " U-peak");
        header.push_back(std::string(baselines::to_string(kind)) +
                         " A-peak");
        header.push_back(std::string(baselines::to_string(kind)) +
                         " frag");
    }
    metrics::Table table(header);

    // One suite instance per allocator kind: workload bodies carry
    // one-shot handoff state (passive-false) that must not be reused
    // across runs.
    std::vector<std::vector<NamedWorkload>> suites;
    for (std::size_t k = 0; k < baselines::kAllKinds.size(); ++k)
        suites.push_back(build_suite(quick));

    for (std::size_t w = 0; w < suites[0].size(); ++w) {
        table.begin_row();
        table.cell(suites[0][w].name);
        for (std::size_t k = 0; k < baselines::kAllKinds.size(); ++k) {
            auto kind = baselines::kAllKinds[k];
            const NamedWorkload& wl = suites[k][w];
            Config config;
            config.heap_count = nthreads;
            auto allocator = baselines::make_allocator<NativePolicy>(
                kind, config);
            workloads::native_run(nthreads, [&](int tid) {
                wl.body(*allocator, tid, nthreads);
            });
            const detail::AllocatorStats& stats = allocator->stats();
            table.cell(metrics::format_bytes(stats.in_use_bytes.peak()));
            table.cell(metrics::format_bytes(stats.held_bytes.peak()));
            table.cell_double(stats.fragmentation());

            // Native threads make these noisy run to run; gate only
            // Hoard's ratio (and loosely — see CI smoke thresholds).
            report.add_metric(
                "frag/" + wl.name + "/" + baselines::to_string(kind),
                stats.fragmentation(), "ratio",
                kind == baselines::AllocatorKind::hoard
                    ? metrics::Better::lower
                    : metrics::Better::info);
        }
    }
    table.print(std::cout);

    std::cout << "\n# Paper reference: Hoard's fragmentation stays"
                 " bounded (~<= 1/(1-f) + slack); compare the hoard and"
                 " private columns on larson.\n";
    if (!cli.json_path.empty() && !report.write_file(cli.json_path))
        return 1;
    return 0;
}
