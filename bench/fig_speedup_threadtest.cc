/**
 * @file
 * FIG-threadtest (DESIGN.md §4): speedup of the threadtest benchmark,
 * 1..14 simulated processors, all four allocators.
 *
 * Paper shape to match: Hoard near-linear; the serial allocator flat or
 * declining (one lock serializes an allocation-dominated load); the
 * private-heap classes scale since threadtest frees its own objects.
 */

#include "bench/fig_common.h"
#include "workloads/sim_bodies.h"

int
main(int argc, char** argv)
{
    using namespace hoard;
    bench::FigCli cli = bench::parse_cli(argc, argv);

    workloads::ThreadtestParams params;
    params.total_objects = cli.quick ? 6000 : 16000;
    params.iterations = cli.quick ? 3 : 8;
    params.object_bytes = 8;

    bench::emit_figure("FIG-threadtest: speedup vs processors",
                       bench::paper_options(cli),
                       workloads::threadtest_body(params), cli);
    return 0;
}
