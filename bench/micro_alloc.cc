/**
 * @file
 * MICRO (DESIGN.md §4): native single-thread malloc/free latency per
 * allocator and size (google-benchmark).
 *
 * Validates the paper's "fast" column: Hoard's per-operation cost must
 * stay within a small constant factor of the serial allocator's on one
 * thread — per-processor heaps and the emptiness bookkeeping cannot be
 * allowed to tax the common case.
 */

#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "baselines/factory.h"
#include "policy/native_policy.h"

namespace {

using namespace hoard;

/** alloc+free pairs at a fixed size, LIFO reuse (the hot path). */
void
pairs_at_size(benchmark::State& state, baselines::AllocatorKind kind)
{
    Config config;
    config.heap_count = 4;
    auto allocator = baselines::make_allocator<NativePolicy>(kind, config);
    const std::size_t bytes = static_cast<std::size_t>(state.range(0));

    for (auto _ : state) {
        void* p = allocator->allocate(bytes);
        benchmark::DoNotOptimize(p);
        allocator->deallocate(p);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 2);
}

/** FIFO churn over a working set: exercises fullness-group movement. */
void
churn(benchmark::State& state, baselines::AllocatorKind kind)
{
    Config config;
    config.heap_count = 4;
    auto allocator = baselines::make_allocator<NativePolicy>(kind, config);
    const std::size_t bytes = static_cast<std::size_t>(state.range(0));
    constexpr std::size_t kWindow = 256;

    std::vector<void*> window(kWindow, nullptr);
    std::size_t cursor = 0;
    for (auto _ : state) {
        if (window[cursor] != nullptr)
            allocator->deallocate(window[cursor]);
        window[cursor] = allocator->allocate(bytes);
        benchmark::DoNotOptimize(window[cursor]);
        cursor = (cursor + 1) % kWindow;
    }
    for (void* p : window) {
        if (p != nullptr)
            allocator->deallocate(p);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 2);
}

void
register_benches()
{
    for (auto kind : baselines::kAllKinds) {
        std::string name = baselines::to_string(kind);
        benchmark::RegisterBenchmark(("pairs/" + name).c_str(),
                                     [kind](benchmark::State& s) {
                                         pairs_at_size(s, kind);
                                     })
            ->Arg(8)
            ->Arg(64)
            ->Arg(256)
            ->Arg(1024)
            ->Arg(3500)
            ->Arg(65536);
        benchmark::RegisterBenchmark(("churn/" + name).c_str(),
                                     [kind](benchmark::State& s) {
                                         churn(s, kind);
                                     })
            ->Arg(8)
            ->Arg(64)
            ->Arg(256);
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    register_benches();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
