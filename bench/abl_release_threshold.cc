/**
 * @file
 * ABL-release (DESIGN.md §6): sweep of the victim release threshold t.
 *
 * The paper's Figure 3 transfers any superblock that is at least f
 * empty.  Implemented literally (t = f), a workload whose natural heap
 * density sits below (1-f) is pinned at the emptiness boundary: every
 * free sends a partial superblock to the global heap and the next
 * allocation of that class fetches it straight back.  This bench
 * measures the pinning on the shbench mix (many size classes at
 * moderate occupancy) — simulated scalability at P=8 plus native
 * transfer counts and footprint — as t sweeps from the paper-literal
 * f up to "completely empty only".
 */

#include <iostream>
#include <vector>

#include "core/hoard_allocator.h"
#include "metrics/speedup.h"
#include "metrics/table.h"
#include "policy/native_policy.h"
#include "workloads/native_bodies.h"
#include "workloads/runners.h"
#include "workloads/sim_bodies.h"

int
main()
{
    using namespace hoard;
    const std::vector<double> thresholds = {0.25, 0.5, 0.75, 0.875, 1.0};
    const int nthreads = 4;

    workloads::ShbenchParams sh;
    sh.operations = 60000;  // total, split over threads
    sh.working_set = 400;

    std::cout << "# ABL-release: victim release threshold sweep"
                 " (hoard only), shbench mix\n";
    std::cout << "# t = 0.25 is the paper-literal rule (any f-empty"
                 " superblock moves)\n";
    metrics::Table table({"t", "A-peak", "frag", "transfers",
                          "global fetches", "sim speedup P=8"});

    for (double t : thresholds) {
        Config config;
        config.release_threshold = t;
        config.heap_count = nthreads;

        HoardAllocator<NativePolicy> allocator(config);
        auto body = workloads::native_shbench_body(sh);
        workloads::native_run(nthreads, [&](int tid) {
            body(allocator, tid, nthreads);
        });

        metrics::SpeedupOptions opt;
        opt.procs = {1, 8};
        opt.base_config = config;
        opt.kinds = {baselines::AllocatorKind::hoard};
        auto sim = metrics::run_speedup_experiment(
            "abl-release", opt, workloads::shbench_body(sh));

        const detail::AllocatorStats& stats = allocator.stats();
        table.begin_row();
        table.cell_double(t, 3);
        table.cell(metrics::format_bytes(stats.held_bytes.peak()));
        table.cell_double(stats.fragmentation());
        table.cell_u64(stats.superblock_transfers.get());
        table.cell_u64(stats.global_fetches.get());
        table.cell_double(sim.cells[1][0].speedup);
    }
    table.print(std::cout);

    std::cout << "\n# Expected: transfers and fetches collapse and"
                 " scalability recovers as t rises; footprint grows"
                 " mildly (bounded by 1/(1-t) of live bytes).\n";
    return 0;
}
