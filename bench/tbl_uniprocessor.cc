/**
 * @file
 * TBL-uni (DESIGN.md §4): uniprocessor overhead.
 *
 * The paper's companion claim to scalability is that Hoard costs
 * almost nothing when there is nothing to scale: on one processor its
 * runtime is within a small factor of a serial allocator's.  This
 * bench runs every benchmark at P=1 on the simulated machine and
 * reports each allocator's makespan relative to the serial baseline
 * (1.00 = identical cost).
 */

#include <iostream>
#include <string>
#include <vector>

#include "bench/fig_common.h"
#include "metrics/bench_report.h"
#include "metrics/speedup.h"
#include "metrics/table.h"
#include "workloads/sim_bodies.h"

namespace {

using namespace hoard;

struct NamedBody
{
    std::string name;
    metrics::SimWorkloadBody body;
};

}  // namespace

int
main(int argc, char** argv)
{
    bench::FigCli cli = bench::parse_cli(argc, argv);
    const bool quick = cli.quick;
    metrics::BenchReport report(cli.bench_name, quick);
    report.set_title("TBL-uni: uniprocessor cost vs serial");

    workloads::ThreadtestParams tt;
    tt.total_objects = quick ? 6000 : 16000;
    tt.iterations = quick ? 3 : 6;
    workloads::ShbenchParams sh;
    sh.operations = quick ? 20000 : 60000;
    workloads::LarsonParams la;
    la.rounds_per_epoch = quick ? 20000 : 60000;
    la.epochs = 2;
    workloads::FalseSharingParams fs;
    fs.total_objects = 640;
    fs.writes_per_object = 200;
    workloads::BemSimParams be;
    be.phases = 1;
    workloads::BarnesHutParams bh;
    bh.total_systems = 8;
    bh.bodies_per_system = 150;
    bh.steps = 1;

    std::vector<NamedBody> suite = {
        {"threadtest", workloads::threadtest_body(tt)},
        {"shbench", workloads::shbench_body(sh)},
        {"larson", workloads::larson_body(la)},
        {"active-false", workloads::active_false_body(fs)},
        {"BEM-proxy", workloads::bemsim_body(be)},
        {"barnes-hut", workloads::barneshut_body(bh)},
    };

    std::cout << "# TBL-uni: single-processor cost relative to the"
                 " serial allocator (1.00 = equal)\n";
    std::vector<std::string> header = {"benchmark"};
    for (auto kind : baselines::kAllKinds)
        header.emplace_back(baselines::to_string(kind));
    metrics::Table table(header);

    for (const NamedBody& wl : suite) {
        metrics::SpeedupOptions opt;
        opt.procs = {1};
        auto result =
            metrics::run_speedup_experiment(wl.name, opt, wl.body);
        double serial =
            static_cast<double>(result.cells[0][1].makespan);
        table.begin_row();
        table.cell(wl.name);
        for (std::size_t k = 0; k < baselines::kAllKinds.size(); ++k) {
            const double cost =
                static_cast<double>(result.cells[0][k].makespan) /
                serial;
            table.cell_double(cost);
            report.add_metric(
                "uni/" + wl.name + "/" +
                    baselines::to_string(baselines::kAllKinds[k]),
                cost, "x",
                baselines::kAllKinds[k] ==
                        baselines::AllocatorKind::hoard
                    ? metrics::Better::lower
                    : metrics::Better::info);
        }
    }
    table.print(std::cout);

    std::cout << "\n# Expected: the hoard column stays near 1.0 — the"
                 " per-processor heap machinery must not tax the"
                 " uniprocessor case (paper §'Speed').\n";
    if (!cli.json_path.empty() && !report.write_file(cli.json_path))
        return 1;
    return 0;
}
