/**
 * @file
 * FIG-active (DESIGN.md §4): speedup of active-false — each thread
 * repeatedly allocates one 8-byte object, writes it many times, frees
 * it — 1..14 simulated processors.
 *
 * Paper shape to match: allocators that carve one cache line across
 * threads (the serial class) stay near speedup 1 regardless of P,
 * because every write ping-pongs the shared line; Hoard and the
 * private-heap classes, whose superblocks are used by one thread at a
 * time, scale nearly linearly.
 */

#include "bench/fig_common.h"
#include "workloads/sim_bodies.h"

int
main(int argc, char** argv)
{
    using namespace hoard;
    bench::FigCli cli = bench::parse_cli(argc, argv);

    workloads::FalseSharingParams params;
    params.total_objects = cli.quick ? 600 : 1680;
    params.writes_per_object = 600;
    params.object_bytes = 8;

    bench::emit_figure("FIG-active: active-false speedup vs processors",
                       bench::paper_options(cli),
                       workloads::active_false_body(params), cli);
    return 0;
}
