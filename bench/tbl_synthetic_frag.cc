/**
 * @file
 * TBL-synth (DESIGN.md §4 extension): trace-driven fragmentation on
 * synthetic workloads, the Wilson/Johnstone methodology underlying the
 * paper's memory analysis.
 *
 * Sweeps size-distribution x lifetime-distribution families, generates
 * a balanced trace for each, replays it against every allocator, and
 * reports fragmentation relative to the trace's true maximum live
 * bytes — the denominator the fragmentation literature uses.
 */

#include <cstring>
#include <iostream>
#include <string>

#include "baselines/factory.h"
#include "metrics/table.h"
#include "policy/native_policy.h"
#include "workloads/synthetic.h"
#include "workloads/trace.h"

namespace {

using namespace hoard;

const char*
to_string(workloads::SizeDist d)
{
    switch (d) {
      case workloads::SizeDist::uniform:
        return "uniform";
      case workloads::SizeDist::geometric:
        return "geometric";
      case workloads::SizeDist::bimodal:
        return "bimodal";
    }
    return "?";
}

const char*
to_string(workloads::LifetimeDist d)
{
    switch (d) {
      case workloads::LifetimeDist::exponential:
        return "expo";
      case workloads::LifetimeDist::uniform:
        return "uniform";
      case workloads::LifetimeDist::phased:
        return "phased";
    }
    return "?";
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

    std::cout << "# TBL-synth: fragmentation (peak held / trace max"
                 " live) on synthetic traces,\n"
                 "# 4 logical threads, 10% cross-thread frees\n";
    std::vector<std::string> header = {"sizes", "lifetimes",
                                       "max live"};
    for (auto kind : baselines::kAllKinds)
        header.emplace_back(baselines::to_string(kind));
    metrics::Table table(header);

    for (auto sizes :
         {workloads::SizeDist::uniform, workloads::SizeDist::geometric,
          workloads::SizeDist::bimodal}) {
        for (auto lifetimes : {workloads::LifetimeDist::exponential,
                               workloads::LifetimeDist::uniform,
                               workloads::LifetimeDist::phased}) {
            workloads::SyntheticParams params;
            params.operations = quick ? 8000 : 30000;
            params.size_dist = sizes;
            params.lifetime_dist = lifetimes;
            params.mean_lifetime = 400;
            params.cross_thread_free_fraction = 0.1;
            workloads::Trace trace =
                workloads::generate_synthetic_trace(params);

            table.begin_row();
            table.cell(to_string(sizes));
            table.cell(to_string(lifetimes));
            table.cell(metrics::format_bytes(trace.max_live_bytes()));
            for (auto kind : baselines::kAllKinds) {
                Config config;
                config.heap_count = params.nthreads;
                auto allocator =
                    baselines::make_allocator<NativePolicy>(kind,
                                                            config);
                auto result = workloads::replay<NativePolicy>(
                    *allocator, trace);
                table.cell_double(
                    static_cast<double>(result.peak_held_bytes) /
                    static_cast<double>(trace.max_live_bytes()));
            }
        }
    }
    table.print(std::cout);

    std::cout << "\n# Expected: hoard stays within a small constant of"
                 " the trace's live memory across every distribution"
                 " family; pure-private inflates under cross-thread"
                 " frees.\n";
    return 0;
}
