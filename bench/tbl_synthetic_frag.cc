/**
 * @file
 * TBL-synth (DESIGN.md §4 extension): trace-driven fragmentation on
 * synthetic workloads, the Wilson/Johnstone methodology underlying the
 * paper's memory analysis.
 *
 * Sweeps size-distribution x lifetime-distribution families, generates
 * a balanced trace for each, replays it against every allocator, and
 * reports fragmentation relative to the trace's true maximum live
 * bytes — the denominator the fragmentation literature uses.
 */

#include <iostream>
#include <string>

#include "baselines/factory.h"
#include "bench/fig_common.h"
#include "metrics/bench_report.h"
#include "metrics/table.h"
#include "policy/native_policy.h"
#include "workloads/synthetic.h"
#include "workloads/trace.h"

namespace {

using namespace hoard;

const char*
to_string(workloads::SizeDist d)
{
    switch (d) {
      case workloads::SizeDist::uniform:
        return "uniform";
      case workloads::SizeDist::geometric:
        return "geometric";
      case workloads::SizeDist::bimodal:
        return "bimodal";
    }
    return "?";
}

const char*
to_string(workloads::LifetimeDist d)
{
    switch (d) {
      case workloads::LifetimeDist::exponential:
        return "expo";
      case workloads::LifetimeDist::uniform:
        return "uniform";
      case workloads::LifetimeDist::phased:
        return "phased";
    }
    return "?";
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::FigCli cli = bench::parse_cli(argc, argv);
    const bool quick = cli.quick;
    metrics::BenchReport report(cli.bench_name, quick);
    report.set_title("TBL-synth: fragmentation on synthetic traces");

    std::cout << "# TBL-synth: fragmentation (peak held / trace max"
                 " live) on synthetic traces,\n"
                 "# 4 logical threads, 10% cross-thread frees\n";
    std::vector<std::string> header = {"sizes", "lifetimes",
                                       "max live"};
    for (auto kind : baselines::kAllKinds)
        header.emplace_back(baselines::to_string(kind));
    metrics::Table table(header);

    for (auto sizes :
         {workloads::SizeDist::uniform, workloads::SizeDist::geometric,
          workloads::SizeDist::bimodal}) {
        for (auto lifetimes : {workloads::LifetimeDist::exponential,
                               workloads::LifetimeDist::uniform,
                               workloads::LifetimeDist::phased}) {
            workloads::SyntheticParams params;
            params.operations = quick ? 8000 : 30000;
            params.size_dist = sizes;
            params.lifetime_dist = lifetimes;
            params.mean_lifetime = 400;
            params.cross_thread_free_fraction = 0.1;
            workloads::Trace trace =
                workloads::generate_synthetic_trace(params);

            table.begin_row();
            table.cell(to_string(sizes));
            table.cell(to_string(lifetimes));
            table.cell(metrics::format_bytes(trace.max_live_bytes()));
            for (auto kind : baselines::kAllKinds) {
                Config config;
                config.heap_count = params.nthreads;
                auto allocator =
                    baselines::make_allocator<NativePolicy>(kind,
                                                            config);
                auto result = workloads::replay<NativePolicy>(
                    *allocator, trace);
                const double frag =
                    static_cast<double>(result.peak_held_bytes) /
                    static_cast<double>(trace.max_live_bytes());
                table.cell_double(frag);
                // Trace replay is logical-thread deterministic, so
                // Hoard's ratio is exactly reproducible and gateable.
                report.add_metric(
                    std::string("synthfrag/") + to_string(sizes) + "_" +
                        to_string(lifetimes) + "/" +
                        baselines::to_string(kind),
                    frag, "ratio",
                    kind == baselines::AllocatorKind::hoard
                        ? metrics::Better::lower
                        : metrics::Better::info);
            }
        }
    }
    table.print(std::cout);

    std::cout << "\n# Expected: hoard stays within a small constant of"
                 " the trace's live memory across every distribution"
                 " family; pure-private inflates under cross-thread"
                 " frees.\n";
    if (!cli.json_path.empty() && !report.write_file(cli.json_path))
        return 1;
    return 0;
}
