/**
 * @file
 * macro-preload: threaded KV-store churn under the LD_PRELOAD shim.
 *
 * The other bench binaries call the allocator through its C++ API; this
 * one exercises the production deployment path instead.  The workload
 * is a multi-threaded key/value store doing mixed-size string churn
 * (inserts, overwrites, erases) plus a cross-thread mailbox so some
 * frees land on a foreign thread — a compressed version of the
 * server-style traffic the Hoard paper targets.
 *
 * It runs twice:
 *
 *  - in-process, i.e. under whatever malloc this binary linked —
 *    glibc — giving the baseline;
 *  - re-executing itself under LD_PRELOAD=libhoard.so, so every
 *    malloc/free in the child (the workload's, libstdc++'s, glibc's
 *    own) goes through the shim, bootstrap arena and hardened free
 *    path included.  The child is signalled by the HOARD_MACRO_RESULT
 *    environment variable — not a CLI flag, since the strict bench CLI
 *    rejects unknown flags — and reports its throughput through that
 *    file.
 *
 * The preload throughput is the gated metric; the glibc number and the
 * ratio are context.  If the shim is not built (libhoard.so missing
 * next to the build tree), the preload half is skipped and only the
 * baseline is reported, so the bench degrades instead of failing in
 * partial builds.  A child that crashes or writes garbage fails the
 * bench: completing under preload IS the acceptance criterion.
 *
 *   ./build/bench/macro_preload [--quick] [--json FILE]
 *
 * HOARD_SHIM_PATH overrides the libhoard.so location.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <unistd.h>

#include "bench/fig_common.h"
#include "metrics/bench_report.h"

namespace {

struct ChurnParams
{
    int threads = 4;
    std::size_t ops_per_thread = 600000;
};

/**
 * Mixed-size string churn over per-thread maps, with a shared mailbox
 * donating ~1/64 of the strings to a sibling thread so the remote-free
 * path sees traffic.  Returns operations per second.
 */
double
run_churn(const ChurnParams& params)
{
    std::mutex mailbox_mutex;
    std::vector<std::string> mailbox;

    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(params.threads));
    for (int t = 0; t < params.threads; ++t) {
        workers.emplace_back([&, t] {
            std::unordered_map<std::uint64_t, std::string> store;
            std::uint64_t rng =
                0x9e3779b97f4a7c15ull ^ static_cast<std::uint64_t>(t);
            for (std::size_t i = 0; i < params.ops_per_thread; ++i) {
                rng = rng * 6364136223846793005ull +
                      1442695040888963407ull;
                const std::uint64_t key = (rng >> 17) % 4096;
                // 16..527 bytes: spans several size classes.
                const std::size_t len = 16 + ((rng >> 33) % 512);
                store[key].assign(len, static_cast<char>('a' + t));
                if ((rng & 7) == 0)
                    store.erase((rng >> 23) % 4096);
                if ((rng & 63) == 0) {
                    // Donate a string / adopt (and free) a sibling's.
                    std::string incoming;
                    {
                        std::lock_guard<std::mutex> lock(mailbox_mutex);
                        if (!mailbox.empty()) {
                            incoming = std::move(mailbox.back());
                            mailbox.pop_back();
                        }
                        mailbox.emplace_back(len, 'm');
                    }
                }
            }
        });
    }
    for (std::thread& w : workers)
        w.join();
    auto t1 = std::chrono::steady_clock::now();

    const double seconds =
        std::chrono::duration<double>(t1 - t0).count();
    const double ops = static_cast<double>(params.threads) *
                       static_cast<double>(params.ops_per_thread);
    return ops / seconds;
}

ChurnParams
params_for(bool quick)
{
    ChurnParams params;
    if (quick)
        params.ops_per_thread = 60000;
    return params;
}

/** libhoard.so next to this binary's build tree, or the env override. */
std::string
shim_path(const char* argv0)
{
    if (const char* env = std::getenv("HOARD_SHIM_PATH"))
        return env;
    std::string dir = argv0 != nullptr ? argv0 : ".";
    std::size_t slash = dir.find_last_of('/');
    dir = slash == std::string::npos ? "." : dir.substr(0, slash);
    return dir + "/../src/shim/libhoard.so";
}

/** Child half: run the churn, write ops/sec to @p result_path. */
int
child_main(const char* result_path)
{
    const char* quick = std::getenv("HOARD_MACRO_QUICK");
    const double ops =
        run_churn(params_for(quick != nullptr && quick[0] == '1'));
    std::ofstream os(result_path);
    os << ops << "\n";
    os.flush();
    return os.good() ? 0 : 1;
}

}  // namespace

int
main(int argc, char** argv)
{
    if (const char* result = std::getenv("HOARD_MACRO_RESULT"))
        return child_main(result);

    hoard::bench::FigCli cli = hoard::bench::parse_cli(argc, argv);
    const ChurnParams params = params_for(cli.quick);

    hoard::metrics::BenchReport report(cli.bench_name, cli.quick);
    report.set_title(
        "macro-preload: threaded KV churn under LD_PRELOAD=libhoard.so");

    std::printf("# macro-preload: %d threads x %zu KV ops, "
                "glibc in-process vs LD_PRELOAD=libhoard.so\n",
                params.threads, params.ops_per_thread);

    const double glibc_ops = run_churn(params);
    std::printf("  glibc (in-process):     %12.0f ops/sec\n",
                glibc_ops);
    report.add_metric("glibc_ops_per_sec", glibc_ops, "1/s",
                      hoard::metrics::Better::info);

    const std::string shim = shim_path(argc > 0 ? argv[0] : nullptr);
    if (::access(shim.c_str(), R_OK) != 0) {
        std::printf("  libhoard.so not found at %s — preload half "
                    "skipped\n",
                    shim.c_str());
        if (!cli.json_path.empty() &&
            !report.write_file(cli.json_path))
            return 1;
        return 0;
    }

    const std::string result_path =
        (cli.json_path.empty() ? std::string("macro_preload")
                               : cli.json_path) +
        ".child.tmp";
    std::string cmd = "HOARD_MACRO_RESULT='" + result_path + "'";
    if (cli.quick)
        cmd += " HOARD_MACRO_QUICK=1";
    cmd += " LD_PRELOAD='" + shim + "' '" + argv[0] + "'";

    const int rc = std::system(cmd.c_str());
    double hoard_ops = 0.0;
    bool child_ok = false;
    if (rc == 0) {
        std::ifstream is(result_path);
        child_ok = static_cast<bool>(is >> hoard_ops) && hoard_ops > 0;
    }
    std::remove(result_path.c_str());
    if (!child_ok) {
        std::fprintf(stderr,
                     "macro_preload: preload child failed (rc=%d)\n",
                     rc);
        return 1;
    }

    std::printf("  hoard (LD_PRELOAD):     %12.0f ops/sec\n",
                hoard_ops);
    std::printf("  ratio (hoard/glibc):    %12.2fx\n",
                hoard_ops / glibc_ops);
    report.add_metric("hoard_preload_ops_per_sec", hoard_ops, "1/s",
                      hoard::metrics::Better::higher);
    report.add_metric("preload_ratio", hoard_ops / glibc_ops, "x",
                      hoard::metrics::Better::info);

    if (!cli.json_path.empty() && !report.write_file(cli.json_path))
        return 1;
    return 0;
}
