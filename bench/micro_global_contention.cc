/**
 * @file
 * micro-global-contention: phase-locked cold-start churn that funnels
 * every thread through the allocator's slow path at the same instant.
 *
 * A barrier phase-locks P threads so they all (a) allocate a working
 * set far larger than the K*S slack, then (b) free all of it, every
 * round.  The free phase pushes every heap below the emptiness
 * invariant, so superblocks stream to the global heap; the next
 * allocation phase starts with every per-processor heap cold, so every
 * thread misses its heap simultaneously and hammers
 * fetch_from_global.  Magazines are off — the bench isolates the slow
 * path the fast path cannot hide.
 *
 * Two configurations, same churn body:
 *
 *  - "churn": the default release threshold (t = 1) transfers only
 *    completely-empty superblocks, so the traffic is empty-superblock
 *    recycling — the reuse-cache path.  All threads share one object
 *    size.
 *  - "bins": paper-literal mode (t = f = 1/4) transfers partial
 *    superblocks mid-free-phase, and each thread uses a distinct size
 *    class, so the traffic lands in (and is fetched back from)
 *    per-class global bins.
 *
 * Measurements: simulated machine at P in {2,4,8} — virtual-time
 * makespan (deterministic, gated, lower is better) and slow-path fetch
 * throughput global_fetches/makespan (gated, higher is better) — plus
 * a native wall-clock fetch rate at P=8 as ungated context.
 *
 *   ./build/bench/micro_global_contention [--quick] [--json FILE]
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "bench/fig_common.h"
#include "core/hoard_allocator.h"
#include "metrics/bench_report.h"
#include "metrics/table.h"
#include "policy/native_policy.h"
#include "policy/sim_policy.h"
#include "workloads/runners.h"

namespace {

using namespace hoard;

/**
 * One spin-loop beat: virtual work under the simulator (so the
 * scheduler preempts at quantum edges) and a scheduler yield on real
 * threads (so a 1-core host does not burn a whole timeslice spinning).
 */
template <typename Policy>
void
spin_pause()
{
    if constexpr (std::is_same_v<Policy, NativePolicy>)
        std::this_thread::yield();
    else
        Policy::work(CostKind::list_op);
}

/**
 * Sense-reversing barrier usable from both worlds: the last arriver
 * flips the generation, everyone else spins on it.  This is the
 * phase-lock — it lines every thread up at the start of each
 * allocation phase so the slow-path misses collide.
 */
struct SpinBarrier
{
    explicit SpinBarrier(int n) : nthreads(n) {}

    template <typename Policy>
    void
    wait()
    {
        int gen = generation.load(std::memory_order_acquire);
        if (count.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            nthreads) {
            count.store(0, std::memory_order_relaxed);
            generation.fetch_add(1, std::memory_order_release);
        } else {
            while (generation.load(std::memory_order_acquire) == gen)
                spin_pause<Policy>();
        }
    }

    const int nthreads;
    std::atomic<int> count{0};
    std::atomic<int> generation{0};
};

struct ChurnParams
{
    int rounds = 0;
    /** Superblocks' worth of working set per thread per round; must
        comfortably exceed Config::slack_superblocks so the free phase
        pushes every heap through the transfer path. */
    int superblocks_per_thread = 32;
    /** Shared object size ("churn" mode); 0 = per-thread distinct
        classes ("bins" mode).  Near S/2 so superblocks hold only a
        couple of blocks each — the slow path dominates the round
        instead of being amortized over hundreds of block operations. */
    std::size_t object_bytes = 3300;
};

/** Distinct-size schedule for "bins" mode: ratio 1.25 > the 1.2 class
    base keeps the classes distinct; all sizes stay <= S/2 and large
    enough that superblocks hold only a handful of blocks. */
std::size_t
bins_object_bytes(int tid)
{
    std::size_t size = 1700;
    for (int i = 0; i < tid % 5; ++i)
        size = size * 5 / 4;
    return size;
}

/**
 * One thread's churn body.  @p slots is this thread's preallocated
 * pointer store (>= blocks slots).
 */
template <typename Policy>
void
churn_thread(HoardAllocator<Policy>& allocator, const ChurnParams& params,
             SpinBarrier& barrier, int tid, std::vector<void*>& slots)
{
    Policy::rebind_thread_index(tid);
    const SizeClasses& classes = allocator.size_classes();
    // Clamp to the largest non-huge class: anything bigger would be
    // served by a dedicated chunk and never touch the global heap.
    const std::size_t bytes =
        std::min(params.object_bytes != 0 ? params.object_bytes
                                          : bins_object_bytes(tid),
                 classes.largest());
    const std::size_t block =
        classes.block_size(classes.class_for(bytes));
    const std::size_t payload = Superblock::payload_bytes_for(
        allocator.config().superblock_bytes);
    const std::size_t blocks =
        static_cast<std::size_t>(params.superblocks_per_thread) *
        (payload / block);

    for (int round = 0; round < params.rounds; ++round) {
        barrier.template wait<Policy>();
        for (std::size_t i = 0; i < blocks; ++i)
            slots[i] = allocator.allocate(bytes);
        barrier.template wait<Policy>();
        for (std::size_t i = 0; i < blocks; ++i)
            allocator.deallocate(slots[i]);
    }
}

std::size_t
max_slots(const Config& config, const ChurnParams& params)
{
    // Room for the smallest class any thread uses (block >= 1700 B).
    const std::size_t payload =
        Superblock::payload_bytes_for(config.superblock_bytes);
    return static_cast<std::size_t>(params.superblocks_per_thread) *
           (payload / 1700);
}

struct SimResult
{
    std::uint64_t makespan = 0;
    std::uint64_t fetches = 0;
    std::uint64_t transfers = 0;
};

/** Simulated run: P fibers on P processors, phase-locked. */
SimResult
sim_churn(int nprocs, const ChurnParams& params, double release_threshold)
{
    Config config;
    config.heap_count = nprocs;
    config.release_threshold = release_threshold;
    HoardAllocator<SimPolicy> allocator(config);

    std::vector<std::vector<void*>> slots(
        static_cast<std::size_t>(nprocs),
        std::vector<void*>(max_slots(config, params)));

    // Warm-up pass on its own virtual machine: maps the working set
    // (os_map is 25x a transfer in the cost model) and takes the
    // first-touch cache misses, so the measured pass is steady-state
    // slow-path traffic rather than mmap amortization.
    {
        ChurnParams warm = params;
        warm.rounds = 2;
        SpinBarrier barrier(nprocs);
        workloads::sim_run(nprocs, nprocs, [&](int tid) {
            churn_thread<SimPolicy>(allocator, warm, barrier, tid,
                                    slots[static_cast<std::size_t>(tid)]);
        });
    }
    const std::uint64_t fetches0 = allocator.stats().global_fetches.get();
    const std::uint64_t transfers0 =
        allocator.stats().superblock_transfers.get();

    SpinBarrier barrier(nprocs);
    SimResult result;
    result.makespan = workloads::sim_run(nprocs, nprocs, [&](int tid) {
        churn_thread<SimPolicy>(allocator, params, barrier, tid,
                                slots[static_cast<std::size_t>(tid)]);
    });
    result.fetches = allocator.stats().global_fetches.get() - fetches0;
    result.transfers =
        allocator.stats().superblock_transfers.get() - transfers0;
    return result;
}

/** Native run at @p nthreads OS threads; returns fetches per second. */
double
native_churn(int nthreads, const ChurnParams& params,
             double release_threshold, std::uint64_t* fetches)
{
    Config config;
    config.heap_count = nthreads;
    config.release_threshold = release_threshold;
    HoardAllocator<NativePolicy> allocator(config);

    SpinBarrier barrier(nthreads);
    std::vector<std::vector<void*>> slots(
        static_cast<std::size_t>(nthreads),
        std::vector<void*>(max_slots(config, params)));

    auto t0 = std::chrono::steady_clock::now();
    workloads::native_run(nthreads, [&](int tid) {
        churn_thread<NativePolicy>(allocator, params, barrier, tid,
                                   slots[static_cast<std::size_t>(tid)]);
    });
    auto t1 = std::chrono::steady_clock::now();
    double seconds = std::chrono::duration<double>(t1 - t0).count();
    *fetches = allocator.stats().global_fetches.get();
    return static_cast<double>(*fetches) / seconds;
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::FigCli cli = bench::parse_cli(argc, argv);

    ChurnParams params;
    params.rounds = cli.quick ? 6 : 16;

    Config echo;  // the sim cells' config, modulo heap_count and t
    metrics::BenchReport report(cli.bench_name, cli.quick);
    report.set_title(
        "micro-global-contention: phase-locked cold-start churn");
    report.set_config(echo);

    struct Mode
    {
        const char* name;
        double release_threshold;
        std::size_t object_bytes;  ///< 0 = per-thread distinct classes
    };
    const Mode modes[] = {
        {"churn", 1.0, 3300},  // empty-superblock recycling traffic
        {"bins", 0.25, 0},     // partial transfers into per-class bins
    };

    std::cout << "# micro-global-contention: every thread misses its"
                 " magazine and heap at the same instant\n";
    for (const Mode& mode : modes) {
        params.object_bytes = mode.object_bytes;
        std::cout << "\n## mode " << mode.name
                  << " (t=" << mode.release_threshold << ")\n";
        metrics::Table table({"P", "makespan (cycles)", "global fetches",
                              "transfers", "fetch/Mcycle"});
        for (int nprocs : {2, 4, 8}) {
            SimResult r =
                sim_churn(nprocs, params, mode.release_threshold);
            double rate = r.makespan == 0
                              ? 0.0
                              : static_cast<double>(r.fetches) * 1e6 /
                                    static_cast<double>(r.makespan);
            table.begin_row();
            table.cell_u64(static_cast<std::uint64_t>(nprocs));
            table.cell_u64(r.makespan);
            table.cell_u64(r.fetches);
            table.cell_u64(r.transfers);
            table.cell_double(rate);
            const std::string p = "/p" + std::to_string(nprocs);
            report.add_metric(std::string(mode.name) + "/makespan" + p,
                              static_cast<double>(r.makespan), "cycles",
                              metrics::Better::lower);
            report.add_metric(
                std::string(mode.name) + "/fetch_per_mcycle" + p, rate,
                "1/Mcycle", metrics::Better::higher);
            report.add_metric(std::string(mode.name) + "/fetches" + p,
                              static_cast<double>(r.fetches), "count",
                              metrics::Better::info);
        }
        table.print(std::cout);
    }

    // Native context: wall-clock on whatever host runs this (noisy on
    // loaded or single-core machines), never gated.
    ChurnParams native_params = params;
    native_params.rounds = cli.quick ? 4 : 10;
    native_params.object_bytes = 3300;
    std::uint64_t fetches = 0;
    double rate = native_churn(8, native_params, 1.0, &fetches);
    std::printf("\nnative P=8: %.0f slow-path fetches/sec (%llu"
                " fetches)\n",
                rate, static_cast<unsigned long long>(fetches));
    report.add_metric("native/churn_fetch_per_sec/p8", rate, "1/s",
                      metrics::Better::info);

    std::cout << "\n# Expected: with a sharded global heap the"
                 " phase-locked fetch storm stops serializing on one"
                 " mutex — fetch/Mcycle rises and makespan falls as P"
                 " grows.\n";

    if (!cli.json_path.empty() && !report.write_file(cli.json_path))
        return 1;
    return 0;
}
