/**
 * @file
 * FIG-passive (DESIGN.md §4): speedup of passive-false — the main
 * thread hands each worker one small object; workers free the gift and
 * then run the allocate/hammer/free loop — 1..14 simulated processors.
 *
 * Paper shape to match: allocators that recycle a freed fragment to
 * whichever thread freed it (the pure-private class, and the serial
 * allocator's shared free lists) *passively* spread one cache line
 * across threads and stop scaling; Hoard and ownership-based arenas
 * return the fragment to its home superblock and scale.
 */

#include "bench/fig_common.h"
#include "workloads/sim_bodies.h"

int
main(int argc, char** argv)
{
    using namespace hoard;
    bench::FigCli cli = bench::parse_cli(argc, argv);

    workloads::FalseSharingParams params;
    params.total_objects = cli.quick ? 600 : 1680;
    params.writes_per_object = 600;
    params.object_bytes = 8;

    bench::emit_figure("FIG-passive: passive-false speedup vs processors",
                       bench::paper_options(cli),
                       workloads::passive_false_body(params), cli);
    return 0;
}
