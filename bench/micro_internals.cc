/**
 * @file
 * MICRO-2 (DESIGN.md §4): microbenchmarks of Hoard's internal
 * substrates (google-benchmark).  Confirms the O(1) claims for the
 * building blocks: size-class lookup, superblock block alloc/free,
 * fullness relinks (via intrusive list ops), and the simulator's cache
 * model lookup.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "common/intrusive_list.h"
#include "common/rng.h"
#include "core/config.h"
#include "core/size_classes.h"
#include "core/superblock.h"
#include "os/page_provider.h"
#include "sim/cache_model.h"

namespace {

using namespace hoard;

void
bm_size_class_lookup(benchmark::State& state)
{
    Config config;
    SizeClasses classes(config,
                        Superblock::payload_bytes_for(
                            config.superblock_bytes));
    detail::Rng rng(1);
    std::vector<std::size_t> sizes(1024);
    for (auto& s : sizes)
        s = rng.range(1, classes.largest());
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(classes.class_for(sizes[i]));
        i = (i + 1) & 1023;
    }
}
BENCHMARK(bm_size_class_lookup);

void
bm_superblock_cycle(benchmark::State& state)
{
    os::MmapPageProvider provider;
    Config config;
    void* mem = provider.map(config.superblock_bytes,
                             config.superblock_bytes);
    Superblock* sb =
        Superblock::create(mem, config.superblock_bytes, 0, 64);
    for (auto _ : state) {
        void* p = sb->allocate();
        benchmark::DoNotOptimize(p);
        sb->deallocate(p);
    }
    provider.unmap(mem, config.superblock_bytes);
}
BENCHMARK(bm_superblock_cycle);

struct ListItem
{
    detail::ListNode hook;
    int value = 0;
};

void
bm_intrusive_relink(benchmark::State& state)
{
    detail::IntrusiveList<ListItem, &ListItem::hook> a;
    detail::IntrusiveList<ListItem, &ListItem::hook> b;
    std::vector<ListItem> items(64);
    for (auto& item : items)
        a.push_back(&item);
    for (auto _ : state) {
        ListItem* item = a.pop_front();
        if (item == nullptr)
            continue;  // unreachable: the loop below repopulates a
        b.push_back(item);
        ListItem* back = b.pop_front();
        a.push_back(back);
    }
}
BENCHMARK(bm_intrusive_relink);

void
bm_cache_model_access(benchmark::State& state)
{
    sim::CostModel costs;
    sim::CacheModel cache(costs);
    detail::Rng rng(7);
    std::vector<char> arena(1 << 16);
    for (auto _ : state) {
        const char* p = arena.data() + rng.below(arena.size() - 8);
        benchmark::DoNotOptimize(
            cache.access(static_cast<int>(rng.below(8)), p, 8,
                         rng.chance(0.5)));
    }
}
BENCHMARK(bm_cache_model_access);

void
bm_rng(benchmark::State& state)
{
    detail::Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.below(1000));
}
BENCHMARK(bm_rng);

}  // namespace

BENCHMARK_MAIN();
