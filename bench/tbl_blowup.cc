/**
 * @file
 * TBL-blowup (DESIGN.md §4): the paper's §2.2 memory-consumption
 * comparison on producer-consumer.
 *
 * Two tables:
 *  (a) held bytes vs round for one producer/consumer pair — the
 *      pure-private allocator grows linearly forever (unbounded
 *      blowup), everyone else plateaus;
 *  (b) final held bytes vs the number of thread roles P in a
 *      *rotating* producer-consumer (live memory is always exactly one
 *      batch) — ownership-class arenas strand one batch per role,
 *      growing O(P), while Hoard's emptiness invariant recycles
 *      abandoned heaps through the global heap (the paper's central
 *      memory claim).
 *
 * The workload is allocator-deterministic (logical-thread rebinding,
 * see workloads/prodcons.h), so these numbers are exactly reproducible.
 */

#include <iostream>
#include <vector>

#include "baselines/factory.h"
#include "bench/fig_common.h"
#include "metrics/bench_report.h"
#include "metrics/table.h"
#include "policy/native_policy.h"
#include "workloads/prodcons.h"

int
main(int argc, char** argv)
{
    using namespace hoard;
    bench::FigCli cli = bench::parse_cli(argc, argv);
    const bool quick = cli.quick;
    metrics::BenchReport report(cli.bench_name, quick);
    report.set_title("TBL-blowup: producer-consumer footprint");

    // ---- (a) held bytes vs round, one pair ----
    workloads::ProdConsParams params;
    params.rounds = quick ? 30 : 60;
    params.batch_objects = 400;
    params.object_bytes = 64;

    std::cout << "# TBL-blowup (a): allocator footprint vs round,"
                 " 1 producer/consumer pair\n";
    std::cout << "# live memory is one batch ("
              << metrics::format_bytes(
                     static_cast<unsigned long long>(params.batch_objects) *
                     params.object_bytes)
              << ") at all times\n";

    std::vector<int> sample_rounds = {1, 2, 5, 10, 20, params.rounds};
    std::vector<std::string> header = {"round"};
    for (auto kind : baselines::kAllKinds)
        header.emplace_back(baselines::to_string(kind));
    metrics::Table table_a(header);

    std::vector<std::vector<std::size_t>> series;
    for (auto kind : baselines::kAllKinds) {
        Config config;
        config.heap_count = 4;
        auto allocator =
            baselines::make_allocator<NativePolicy>(kind, config);
        std::vector<std::size_t> held;
        workloads::prodcons_pair<NativePolicy>(*allocator, params, 0,
                                               &held);
        series.push_back(std::move(held));
    }
    for (int round : sample_rounds) {
        table_a.begin_row();
        table_a.cell_u64(static_cast<unsigned long long>(round));
        for (std::size_t k = 0; k < series.size(); ++k)
            table_a.cell(metrics::format_bytes(
                series[k][static_cast<std::size_t>(round - 1)]));
    }
    table_a.print(std::cout);

    for (std::size_t k = 0; k < series.size(); ++k) {
        // Gate Hoard's plateau; the baselines (notably pure-private's
        // unbounded growth) are context, not contract.
        const auto kind = baselines::kAllKinds[k];
        report.add_metric(
            std::string("blowup/pair_final/") + baselines::to_string(kind),
            static_cast<double>(series[k].back()), "bytes",
            kind == baselines::AllocatorKind::hoard
                ? metrics::Better::lower
                : metrics::Better::info);
    }

    // ---- (b) final held bytes vs rotating roles ----
    workloads::ProdConsParams rot = params;
    rot.batch_objects = 6000;  // one 375 KiB batch, always live
    rot.rounds = quick ? 48 : 96;
    std::cout << "\n# TBL-blowup (b): final footprint vs thread roles P,"
                 " rotating producer (live memory = ONE batch = "
              << metrics::format_bytes(
                     static_cast<unsigned long long>(rot.batch_objects) *
                     rot.object_bytes)
              << ")\n";
    metrics::Table table_b(header);  // first column reused as "roles"
    std::vector<int> role_counts = quick ? std::vector<int>{2, 4, 8}
                                         : std::vector<int>{2, 4, 8, 16};
    for (int roles : role_counts) {
        table_b.begin_row();
        table_b.cell_u64(static_cast<unsigned long long>(roles));
        for (auto kind : baselines::kAllKinds) {
            Config config;
            config.heap_count = roles;
            auto allocator =
                baselines::make_allocator<NativePolicy>(kind, config);
            workloads::prodcons_rotating<NativePolicy>(*allocator, rot,
                                                       roles);
            const std::size_t peak = allocator->stats().held_bytes.peak();
            table_b.cell(metrics::format_bytes(peak));
            report.add_metric("blowup/rotating_p" +
                                  std::to_string(roles) + "/" +
                                  baselines::to_string(kind),
                              static_cast<double>(peak), "bytes",
                              kind == baselines::AllocatorKind::hoard
                                  ? metrics::Better::lower
                                  : metrics::Better::info);
        }
    }
    table_b.print(std::cout);

    std::cout << "\n# Expected: 'private' grows with round in (a) without"
                 " bound; 'ownership' strands one batch per role in (b)"
                 " (O(P)); 'hoard' and 'serial' stay near one batch.\n";
    if (!cli.json_path.empty() && !report.write_file(cli.json_path))
        return 1;
    return 0;
}
