/**
 * @file
 * micro-remote-free: cross-thread ping-pong free microbenchmark.
 *
 * The allocator-hostile half of producer/consumer: every block is
 * allocated by one thread and freed by another, so every free targets
 * a heap whose lock the producer is busy hammering.  Pre-remote-queue,
 * the consumer *blocked* on that lock once per free; with the per-heap
 * MPSC remote-free queue a contended free degrades to one lock-free
 * push, and the producer settles the whole chain at its next lock
 * visit.
 *
 * Two measurements:
 *
 *  - simulated machine, P in {2,4,8}: P/2 producer/consumer pairs of
 *    fibers hand batches through a mailbox; the virtual-time makespan
 *    is deterministic and gated (lower is better).  Thread caching is
 *    off, so the delta isolates the remote-queue path.
 *  - native, one producer/consumer pair of OS threads: wall-clock
 *    cross-thread frees per second.  Real-machine context only (noisy
 *    on loaded or single-core hosts), reported as an info metric.
 *
 *   ./build/bench/micro_remote_free [--quick] [--json FILE]
 */

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <thread>
#include <type_traits>
#include <vector>

#include "bench/fig_common.h"
#include "core/hoard_allocator.h"
#include "metrics/bench_report.h"
#include "metrics/table.h"
#include "policy/native_policy.h"
#include "policy/sim_policy.h"
#include "workloads/runners.h"

namespace {

using namespace hoard;

/**
 * One producer/consumer handoff slot.  The producer publishes a filled
 * batch; the consumer takes it, frees every block cross-thread, and
 * resets the slot.  Under SimPolicy the spin loops charge virtual
 * work, so the scheduler preempts spinners at quantum edges and the
 * partner always makes progress; under NativePolicy they yield.
 */
struct Mailbox
{
    std::atomic<void**> batch{nullptr};  ///< null = empty, ready to fill
};

/**
 * One spin-loop beat: virtual work under the simulator (so the
 * scheduler preempts at quantum edges) and a scheduler yield on real
 * threads (so a 1-core host does not burn a whole timeslice spinning).
 */
template <typename Policy>
void
spin_pause()
{
    if constexpr (std::is_same_v<Policy, NativePolicy>)
        std::this_thread::yield();
    else
        Policy::work(CostKind::list_op);
}

struct PingPongParams
{
    int rounds = 0;        ///< batches handed per pair
    int batch_blocks = 0;  ///< blocks per batch
    std::size_t object_bytes = 64;
};

/**
 * Producer half: double-buffered so the contention is real.  While the
 * consumer is freeing batch k into this thread's heap, the producer is
 * already carving batch k+1 from it — allocator lock traffic from both
 * sides of the pair lands on one heap at once.  @p storage holds
 * 2 * batch_blocks slots.
 */
template <typename Policy>
void
producer_thread(Allocator& allocator, const PingPongParams& params,
                Mailbox& box, void** storage, int tid)
{
    Policy::rebind_thread_index(tid);
    for (int round = 0; round < params.rounds; ++round) {
        void** batch = storage + (round % 2) * params.batch_blocks;
        for (int i = 0; i < params.batch_blocks; ++i)
            batch[i] = allocator.allocate(params.object_bytes);
        while (box.batch.load(std::memory_order_acquire) != nullptr)
            spin_pause<Policy>();
        box.batch.store(batch, std::memory_order_release);
    }
    // Drain the handshake so nothing is in flight at join.
    while (box.batch.load(std::memory_order_acquire) != nullptr)
        spin_pause<Policy>();
}

/** Consumer half: take each batch and free every block cross-thread. */
template <typename Policy>
void
consumer_thread(Allocator& allocator, const PingPongParams& params,
                Mailbox& box, int tid)
{
    Policy::rebind_thread_index(tid);
    for (int round = 0; round < params.rounds; ++round) {
        void** batch;
        while ((batch = box.batch.load(std::memory_order_acquire)) ==
               nullptr)
            spin_pause<Policy>();
        for (int i = 0; i < params.batch_blocks; ++i)
            allocator.deallocate(batch[i]);
        box.batch.store(nullptr, std::memory_order_release);
    }
}

/**
 * Simulated run: P fibers on P processors, paired even/odd.  Producer
 * 2k allocates from its heap; consumer 2k+1 frees into it while the
 * producer is mid-allocation — the maximally contended cross-thread
 * pattern.  Returns the virtual-time makespan.
 */
std::uint64_t
sim_pingpong(int nprocs, const PingPongParams& params,
             std::uint64_t* remote_frees)
{
    Config config;
    config.heap_count = nprocs;
    HoardAllocator<SimPolicy> allocator(config);

    const int pairs = nprocs / 2;
    std::vector<Mailbox> boxes(static_cast<std::size_t>(pairs));
    std::vector<std::vector<void*>> storage(
        static_cast<std::size_t>(pairs),
        std::vector<void*>(
            2 * static_cast<std::size_t>(params.batch_blocks)));

    std::uint64_t makespan = workloads::sim_run(
        nprocs, nprocs, [&](int tid) {
            auto pair = static_cast<std::size_t>(tid / 2);
            if (tid % 2 == 0) {
                producer_thread<SimPolicy>(allocator, params,
                                           boxes[pair],
                                           storage[pair].data(), tid);
            } else {
                consumer_thread<SimPolicy>(allocator, params,
                                           boxes[pair], tid);
            }
        });
    *remote_frees = allocator.stats().remote_frees.get();
    return makespan;
}

/** Native run: one OS-thread pair; returns cross-thread frees/sec. */
double
native_pingpong(const PingPongParams& params)
{
    Config config;
    config.heap_count = 2;
    HoardAllocator<NativePolicy> allocator(config);

    Mailbox box;
    std::vector<void*> storage(
        2 * static_cast<std::size_t>(params.batch_blocks));

    auto t0 = std::chrono::steady_clock::now();
    workloads::native_run(2, [&](int tid) {
        if (tid == 0) {
            producer_thread<NativePolicy>(allocator, params, box,
                                          storage.data(), tid);
        } else {
            consumer_thread<NativePolicy>(allocator, params, box, tid);
        }
    });
    auto t1 = std::chrono::steady_clock::now();
    double seconds = std::chrono::duration<double>(t1 - t0).count();
    double frees = static_cast<double>(params.rounds) *
                   static_cast<double>(params.batch_blocks);
    return frees / seconds;
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::FigCli cli = bench::parse_cli(argc, argv);

    PingPongParams params;
    params.rounds = cli.quick ? 150 : 600;
    params.batch_blocks = 32;

    Config echo;  // the sim cells' config, modulo heap_count
    metrics::BenchReport report(cli.bench_name, cli.quick);
    report.set_title(
        "micro-remote-free: cross-thread ping-pong free rate");
    report.set_config(echo);

    std::cout << "# micro-remote-free: every block is freed by a"
                 " thread that does not own its heap\n";
    metrics::Table table({"P", "makespan (cycles)", "remote frees"});
    for (int nprocs : {2, 4, 8}) {
        std::uint64_t remote_frees = 0;
        std::uint64_t makespan =
            sim_pingpong(nprocs, params, &remote_frees);
        table.begin_row();
        table.cell_u64(static_cast<std::uint64_t>(nprocs));
        table.cell_u64(makespan);
        table.cell_u64(remote_frees);
        report.add_metric("makespan/p" + std::to_string(nprocs),
                          static_cast<double>(makespan), "cycles",
                          metrics::Better::lower);
        report.add_metric("remote_frees/p" + std::to_string(nprocs),
                          static_cast<double>(remote_frees), "count",
                          metrics::Better::info);
    }
    table.print(std::cout);

    double rate = native_pingpong(params);
    std::printf("\nnative pair: %.0f cross-thread frees/sec\n", rate);
    // Wall-clock on whatever host runs this: context, never gated.
    report.add_metric("native/frees_per_sec", rate, "1/s",
                      metrics::Better::info);

    std::cout << "\n# Expected: makespan scales with pairs instead of"
                 " serializing on the producers' heap locks; remote"
                 " frees confirm the contended path was exercised.\n";

    if (!cli.json_path.empty() && !report.write_file(cli.json_path))
        return 1;
    return 0;
}
