/**
 * @file
 * Shared CLI and reporting for the bench binaries.
 *
 * Every fig/tbl/abl bench parses the same flag set (strictly: an
 * unknown flag is an error, not a silent no-op — a typo like --qiuck
 * must not silently run the full sweep) and can emit its results as a
 * machine-readable JSON report (metrics/bench_report.h) next to the
 * human table.  bench/run_suite drives every bench with --json and
 * merges the documents; see docs/BENCHMARKING.md.
 */

#ifndef HOARD_BENCH_FIG_COMMON_H_
#define HOARD_BENCH_FIG_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/cli.h"
#include "metrics/bench_report.h"
#include "metrics/speedup.h"

namespace hoard {
namespace bench {

/** Options shared by every bench binary. */
struct FigCli
{
    bool quick = false;
    bool diagnostics = true;

    /** --obs: profile heap locks, trace events, sample the timeline. */
    bool observability = false;

    /** --trace-dir DIR: dump per-cell Chrome traces (implies --obs). */
    std::string trace_dir;

    /**
     * --timeline-dir DIR: dump per-cell gauge timelines as JSONL
     * (implies --obs).  With --obs and no explicit directory,
     * timelines land in --trace-dir if given, else the cwd.
     */
    std::string timeline_dir;

    /** --json FILE: write the machine-readable report to FILE. */
    std::string json_path;

    /** basename(argv[0]): the report's stable bench identifier. */
    std::string bench_name;
};

/** basename without directories, for bench identifiers. */
inline std::string
bench_basename(const char* argv0)
{
    return cli::program_name(argv0, "bench");
}

/**
 * Registers the shared flag set on @p parser; a bench with extra flags
 * of its own can add them before calling parse.  Strictness (unknown
 * flags exit 2, --help exits 0) comes from cli::Parser.
 */
inline void
register_cli(cli::Parser& parser, FigCli& cli)
{
    parser.add_flag("--quick", "shrink the sweep for smoke runs",
                    &cli.quick);
    parser.add_flag("--no-diagnostics",
                    "suppress per-cell diagnostic tables",
                    &cli.diagnostics, false);
    parser.add_flag("--obs",
                    "enable observability: lock profiles,\n"
                    "trace events, timeline sampling",
                    &cli.observability);
    parser.add_string("--trace-dir", "DIR",
                      "dump per-cell Chrome traces to DIR\n"
                      "(implies --obs)",
                      &cli.trace_dir);
    parser.add_string("--timeline-dir", "DIR",
                      "dump per-cell gauge timelines (JSONL)\n"
                      "to DIR (implies --obs)",
                      &cli.timeline_dir);
    parser.add_string("--json", "FILE",
                      "write a machine-readable report to\n"
                      "FILE (schema hoard-bench-report-v1)",
                      &cli.json_path);
}

/** Resolves the implied-observability defaults after parsing. */
inline void
finish_cli(FigCli& cli)
{
    if (!cli.trace_dir.empty() || !cli.timeline_dir.empty())
        cli.observability = true;
    if (cli.observability && cli.timeline_dir.empty())
        cli.timeline_dir = cli.trace_dir.empty() ? "." : cli.trace_dir;
}

/**
 * Parses the shared flag set (common/cli.h).  Unknown flags and
 * missing arguments are errors: the message goes to stderr and the
 * process exits 2, so a typo can never silently change what a bench
 * measured.  --help prints usage and exits 0.
 */
inline FigCli
parse_cli(int argc, char** argv)
{
    FigCli cli;
    cli.bench_name = bench_basename(argc > 0 ? argv[0] : nullptr);
    cli::Parser parser;
    register_cli(parser, cli);
    parser.parse(argc, argv);
    finish_cli(cli);
    return cli;
}

/** The paper's x-axis: 1..14 processors. */
inline metrics::SpeedupOptions
paper_options(const FigCli& cli)
{
    metrics::SpeedupOptions options;
    if (cli.quick)
        options.procs = {1, 2, 4, 8};
    else
        options.procs = {1, 2, 4, 6, 8, 10, 12, 14};
    options.observability = cli.observability;
    options.trace_dir = cli.trace_dir;
    options.timeline_dir = cli.timeline_dir;
    options.slug = cli.bench_name + "_";
    return options;
}

/**
 * Runs and prints one figure; when --json was given, also writes the
 * per-cell report.
 */
inline void
emit_figure(const std::string& title, const metrics::SpeedupOptions& opt,
            const metrics::SimWorkloadBody& body, const FigCli& cli)
{
    metrics::SpeedupResult result =
        metrics::run_speedup_experiment(title, opt, body);
    result.print(std::cout, cli.diagnostics);
    std::cout << "\n";

    if (!cli.json_path.empty()) {
        metrics::BenchReport report(cli.bench_name, cli.quick);
        report.set_title(title);
        report.add_speedup_result(result);
        if (!report.write_file(cli.json_path))
            std::exit(1);
    }
}

}  // namespace bench
}  // namespace hoard

#endif  // HOARD_BENCH_FIG_COMMON_H_
