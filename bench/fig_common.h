/**
 * @file
 * Shared setup for the fig_* speedup benches: the paper's processor
 * counts (1..14, the Sun Enterprise 5000's size) and a tiny CLI
 * (--quick shrinks the sweep for smoke runs, --csv emits CSV rows).
 */

#ifndef HOARD_BENCH_FIG_COMMON_H_
#define HOARD_BENCH_FIG_COMMON_H_

#include <cstring>
#include <iostream>
#include <string>

#include "metrics/speedup.h"

namespace hoard {
namespace bench {

/** Options shared by every figure bench. */
struct FigCli
{
    bool quick = false;
    bool diagnostics = true;

    /** --obs: profile heap locks and trace events in every cell. */
    bool observability = false;

    /** --trace-dir DIR: dump per-cell Chrome traces (implies --obs). */
    std::string trace_dir;
};

inline FigCli
parse_cli(int argc, char** argv)
{
    FigCli cli;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            cli.quick = true;
        else if (std::strcmp(argv[i], "--no-diagnostics") == 0)
            cli.diagnostics = false;
        else if (std::strcmp(argv[i], "--obs") == 0)
            cli.observability = true;
        else if (std::strcmp(argv[i], "--trace-dir") == 0 &&
                 i + 1 < argc)
            cli.trace_dir = argv[++i];
    }
    return cli;
}

/** The paper's x-axis: 1..14 processors. */
inline metrics::SpeedupOptions
paper_options(const FigCli& cli)
{
    metrics::SpeedupOptions options;
    if (cli.quick)
        options.procs = {1, 2, 4, 8};
    else
        options.procs = {1, 2, 4, 6, 8, 10, 12, 14};
    options.observability = cli.observability;
    options.trace_dir = cli.trace_dir;
    return options;
}

/** Runs and prints one figure. */
inline void
emit_figure(const std::string& title, const metrics::SpeedupOptions& opt,
            const metrics::SimWorkloadBody& body, const FigCli& cli)
{
    metrics::SpeedupResult result =
        metrics::run_speedup_experiment(title, opt, body);
    result.print(std::cout, cli.diagnostics);
    std::cout << "\n";
}

}  // namespace bench
}  // namespace hoard

#endif  // HOARD_BENCH_FIG_COMMON_H_
