/**
 * @file
 * Shared CLI and reporting for the bench binaries.
 *
 * Every fig/tbl/abl bench parses the same flag set (strictly: an
 * unknown flag is an error, not a silent no-op — a typo like --qiuck
 * must not silently run the full sweep) and can emit its results as a
 * machine-readable JSON report (metrics/bench_report.h) next to the
 * human table.  bench/run_suite drives every bench with --json and
 * merges the documents; see docs/BENCHMARKING.md.
 */

#ifndef HOARD_BENCH_FIG_COMMON_H_
#define HOARD_BENCH_FIG_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "metrics/bench_report.h"
#include "metrics/speedup.h"

namespace hoard {
namespace bench {

/** Options shared by every bench binary. */
struct FigCli
{
    bool quick = false;
    bool diagnostics = true;

    /** --obs: profile heap locks, trace events, sample the timeline. */
    bool observability = false;

    /** --trace-dir DIR: dump per-cell Chrome traces (implies --obs). */
    std::string trace_dir;

    /**
     * --timeline-dir DIR: dump per-cell gauge timelines as JSONL
     * (implies --obs).  With --obs and no explicit directory,
     * timelines land in --trace-dir if given, else the cwd.
     */
    std::string timeline_dir;

    /** --json FILE: write the machine-readable report to FILE. */
    std::string json_path;

    /** basename(argv[0]): the report's stable bench identifier. */
    std::string bench_name;
};

/** basename without directories, for bench identifiers. */
inline std::string
bench_basename(const char* argv0)
{
    std::string name = argv0 != nullptr ? argv0 : "bench";
    std::size_t slash = name.find_last_of('/');
    if (slash != std::string::npos)
        name = name.substr(slash + 1);
    return name;
}

inline void
print_usage(const std::string& bench, std::ostream& os)
{
    os << "usage: " << bench << " [options]\n"
       << "  --quick            shrink the sweep for smoke runs\n"
       << "  --no-diagnostics   suppress per-cell diagnostic tables\n"
       << "  --obs              enable observability: lock profiles,\n"
       << "                     trace events, timeline sampling\n"
       << "  --trace-dir DIR    dump per-cell Chrome traces to DIR\n"
       << "                     (implies --obs)\n"
       << "  --timeline-dir DIR dump per-cell gauge timelines (JSONL)\n"
       << "                     to DIR (implies --obs)\n"
       << "  --json FILE        write a machine-readable report to\n"
       << "                     FILE (schema hoard-bench-report-v1)\n"
       << "  --help             show this message and exit\n";
}

/**
 * Parses the shared flag set.  Unknown flags and missing arguments are
 * errors: the message goes to stderr and the process exits 2, so a
 * typo can never silently change what a bench measured.  --help prints
 * usage and exits 0.
 */
inline FigCli
parse_cli(int argc, char** argv)
{
    FigCli cli;
    cli.bench_name = bench_basename(argc > 0 ? argv[0] : nullptr);

    auto need_arg = [&](int& i) -> const char* {
        if (i + 1 >= argc) {
            std::cerr << cli.bench_name << ": " << argv[i]
                      << " requires an argument\n";
            std::exit(2);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            cli.quick = true;
        else if (std::strcmp(argv[i], "--no-diagnostics") == 0)
            cli.diagnostics = false;
        else if (std::strcmp(argv[i], "--obs") == 0)
            cli.observability = true;
        else if (std::strcmp(argv[i], "--trace-dir") == 0)
            cli.trace_dir = need_arg(i);
        else if (std::strcmp(argv[i], "--timeline-dir") == 0)
            cli.timeline_dir = need_arg(i);
        else if (std::strcmp(argv[i], "--json") == 0)
            cli.json_path = need_arg(i);
        else if (std::strcmp(argv[i], "--help") == 0) {
            print_usage(cli.bench_name, std::cout);
            std::exit(0);
        } else {
            std::cerr << cli.bench_name << ": unknown option '"
                      << argv[i] << "'\n";
            print_usage(cli.bench_name, std::cerr);
            std::exit(2);
        }
    }
    if (!cli.trace_dir.empty() || !cli.timeline_dir.empty())
        cli.observability = true;
    if (cli.observability && cli.timeline_dir.empty())
        cli.timeline_dir = cli.trace_dir.empty() ? "." : cli.trace_dir;
    return cli;
}

/** The paper's x-axis: 1..14 processors. */
inline metrics::SpeedupOptions
paper_options(const FigCli& cli)
{
    metrics::SpeedupOptions options;
    if (cli.quick)
        options.procs = {1, 2, 4, 8};
    else
        options.procs = {1, 2, 4, 6, 8, 10, 12, 14};
    options.observability = cli.observability;
    options.trace_dir = cli.trace_dir;
    options.timeline_dir = cli.timeline_dir;
    options.slug = cli.bench_name + "_";
    return options;
}

/**
 * Runs and prints one figure; when --json was given, also writes the
 * per-cell report.
 */
inline void
emit_figure(const std::string& title, const metrics::SpeedupOptions& opt,
            const metrics::SimWorkloadBody& body, const FigCli& cli)
{
    metrics::SpeedupResult result =
        metrics::run_speedup_experiment(title, opt, body);
    result.print(std::cout, cli.diagnostics);
    std::cout << "\n";

    if (!cli.json_path.empty()) {
        metrics::BenchReport report(cli.bench_name, cli.quick);
        report.set_title(title);
        report.add_speedup_result(result);
        if (!report.write_file(cli.json_path))
            std::exit(1);
    }
}

}  // namespace bench
}  // namespace hoard

#endif  // HOARD_BENCH_FIG_COMMON_H_
