/**
 * @file
 * ABL-f (DESIGN.md §6): sweep of the empty fraction f.
 *
 * f governs how empty a heap may get before it must shed superblocks:
 * the invariant keeps a_i <= u_i/(1-f) + K*S.  Its trade-off shows on
 * workloads whose live set *oscillates* — after each trough, a small f
 * forces most of the peak's superblocks back to the global heap (low
 * footprint, many transfers), while a large f lets heaps keep them for
 * the next crest (fewer transfers, fatter heaps).  Runs in the
 * paper-literal victim mode (release_threshold = f), since that is the
 * mechanism f modulates.
 *
 * Workload: 4 threads, each repeatedly growing its live set to 3000
 * 64-byte objects and cutting it to a quarter.
 */

#include <iostream>
#include <vector>

#include "common/rng.h"
#include "core/hoard_allocator.h"
#include "metrics/table.h"
#include "policy/native_policy.h"
#include "workloads/runners.h"

namespace {

using namespace hoard;

void
oscillating_churn(Allocator& allocator, int tid, int rounds)
{
    NativePolicy::rebind_thread_index(tid);
    detail::Rng rng(static_cast<std::uint64_t>(tid) + 5);
    std::vector<void*> live;
    for (int round = 0; round < rounds; ++round) {
        while (live.size() < 3000)
            live.push_back(allocator.allocate(64));
        // Trough: free a random three quarters of the live set.
        while (live.size() > 750) {
            auto idx = static_cast<std::size_t>(rng.below(live.size()));
            allocator.deallocate(live[idx]);
            live[idx] = live.back();
            live.pop_back();
        }
    }
    for (void* p : live)
        allocator.deallocate(p);
}

}  // namespace

int
main()
{
    const std::vector<double> fractions = {0.125, 0.25, 0.5, 0.75};
    const int nthreads = 4;
    const int rounds = 40;

    std::cout << "# ABL-f: empty fraction sweep (hoard only,"
                 " paper-literal victim rule), oscillating live set\n";
    metrics::Table table({"f", "A-peak", "frag", "transfers",
                          "global fetches"});

    for (double f : fractions) {
        Config config;
        config.empty_fraction = f;
        config.release_threshold = f;  // paper-literal mode
        config.heap_count = nthreads;

        HoardAllocator<NativePolicy> allocator(config);
        workloads::native_run(nthreads, [&](int tid) {
            oscillating_churn(allocator, tid, rounds);
        });

        const detail::AllocatorStats& stats = allocator.stats();
        table.begin_row();
        table.cell_double(f, 3);
        table.cell(metrics::format_bytes(stats.held_bytes.peak()));
        table.cell_double(stats.fragmentation());
        table.cell_u64(stats.superblock_transfers.get());
        table.cell_u64(stats.global_fetches.get());
    }
    table.print(std::cout);

    std::cout << "\n# Expected: transfers and global fetches fall as f"
                 " grows (heaps may stay emptier); retained footprint"
                 " rises.\n";
    return 0;
}
