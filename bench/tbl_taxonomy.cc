/**
 * @file
 * TBL-1 (DESIGN.md §4): the paper's Table 1 — the allocator taxonomy —
 * regenerated with measured evidence instead of citations.
 *
 * For each allocator the bench measures:
 *   scalable        speedup on threadtest at P=8 (simulated)
 *   no active FS    remote line transfers per hammer-write at P=8 on
 *                   active-false (simulated cache model)
 *   no passive FS   same metric on passive-false
 *   bounded blowup  footprint growth across producer-consumer rounds
 * and prints both the yes/no verdict and the number behind it.
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "baselines/factory.h"
#include "bench/fig_common.h"
#include "metrics/bench_report.h"
#include "metrics/speedup.h"
#include "metrics/table.h"
#include "policy/native_policy.h"
#include "workloads/prodcons.h"
#include "workloads/sim_bodies.h"

namespace {

using namespace hoard;

std::string
verdict(bool ok, double value, const char* fmt)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, value);
    return std::string(ok ? "yes" : "NO") + " (" + buf + ")";
}

}  // namespace

int
main(int argc, char** argv)
{
    using baselines::AllocatorKind;
    bench::FigCli cli = bench::parse_cli(argc, argv);
    metrics::BenchReport report(cli.bench_name, cli.quick);
    report.set_title("TBL-1: allocator taxonomy, measured");
    const std::vector<int> procs = {1, 8};

    // Simulated probes at P=8.
    metrics::SpeedupOptions opt;
    opt.procs = procs;

    workloads::ThreadtestParams tt;
    tt.total_objects = 8000;
    tt.iterations = 4;
    auto scalability = metrics::run_speedup_experiment(
        "taxonomy:threadtest", opt, workloads::threadtest_body(tt));

    workloads::FalseSharingParams fs;
    fs.total_objects = 640;
    fs.writes_per_object = 400;
    auto active = metrics::run_speedup_experiment(
        "taxonomy:active-false", opt, workloads::active_false_body(fs));
    auto passive = metrics::run_speedup_experiment(
        "taxonomy:passive-false", opt,
        workloads::passive_false_body(fs));

    const double total_writes =
        static_cast<double>(fs.total_objects) * fs.writes_per_object;

    std::cout << "# TBL-1: allocator taxonomy with measured evidence\n";
    metrics::Table table({"allocator", "fast (1P)", "scalable (8P)",
                          "no active FS", "no passive FS",
                          "bounded blowup"});

    for (std::size_t k = 0; k < baselines::kAllKinds.size(); ++k) {
        AllocatorKind kind = baselines::kAllKinds[k];
        table.begin_row();
        table.cell(baselines::to_string(kind));

        // Fast: single-processor makespan relative to the serial
        // allocator's (the uniprocessor gold standard).
        double rel =
            static_cast<double>(scalability.cells[0][k].makespan) /
            static_cast<double>(scalability.cells[0][1].makespan);
        table.cell(verdict(rel < 1.5, rel, "%.2fx serial"));

        double sp = scalability.cells[1][k].speedup;
        table.cell(verdict(sp > 4.0, sp, "speedup %.1f"));

        double atr = static_cast<double>(
                         active.cells[1][k].remote_transfers) /
                     total_writes;
        table.cell(verdict(atr < 0.05, atr, "%.3f xfers/write"));

        double ptr_rate = static_cast<double>(
                              passive.cells[1][k].remote_transfers) /
                          total_writes;
        table.cell(verdict(ptr_rate < 0.05, ptr_rate, "%.3f xfers/write"));

        // Blowup: run prodcons, compare footprint at round 40 vs 10.
        Config config;
        config.heap_count = 4;
        auto allocator =
            baselines::make_allocator<NativePolicy>(kind, config);
        workloads::ProdConsParams pc;
        pc.rounds = 40;
        std::vector<std::size_t> held;
        workloads::prodcons_pair<NativePolicy>(*allocator, pc, 0, &held);
        double growth = static_cast<double>(held[39]) /
                        static_cast<double>(held[9]);
        table.cell(verdict(growth < 1.5, growth, "x%.1f over rounds"));

        // Hoard must hold every taxonomy column; the baselines' cells
        // are the comparison evidence, not gated contracts.
        const bool hoard = kind == AllocatorKind::hoard;
        const std::string prefix =
            std::string("taxonomy/") + baselines::to_string(kind);
        report.add_metric(prefix + "/uni_cost_vs_serial", rel, "x",
                          hoard ? metrics::Better::lower
                                : metrics::Better::info);
        report.add_metric(prefix + "/speedup_p8", sp, "x",
                          hoard ? metrics::Better::higher
                                : metrics::Better::info);
        report.add_metric(prefix + "/active_fs_xfers_per_write", atr,
                          "ratio",
                          hoard ? metrics::Better::lower
                                : metrics::Better::info);
        report.add_metric(prefix + "/passive_fs_xfers_per_write",
                          ptr_rate, "ratio",
                          hoard ? metrics::Better::lower
                                : metrics::Better::info);
        report.add_metric(prefix + "/blowup_growth", growth, "x",
                          hoard ? metrics::Better::lower
                                : metrics::Better::info);
    }
    table.print(std::cout);

    std::cout << "\n# Paper's Table 1 rows: serial is fast but neither"
                 " scalable nor false-sharing safe; pure private heaps"
                 " scale but blow up and passively share lines;"
                 " ownership bounds blowup at O(P); Hoard is yes on"
                 " every column.\n";
    if (!cli.json_path.empty() && !report.write_file(cli.json_path))
        return 1;
    return 0;
}
