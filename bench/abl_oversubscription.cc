/**
 * @file
 * ABL-oversub (DESIGN.md §6): more threads than processors.
 *
 * The paper's thread-to-heap mapping hashes any number of threads onto
 * P per-processor heaps; this bench checks that the design degrades
 * gracefully when the machine is oversubscribed (threads = 1x, 2x, 4x
 * processors, total work fixed).  Heaps are shared by hash collisions,
 * so some heap-lock contention is expected — the claim is that Hoard
 * keeps scaling with *processors* regardless of the thread count,
 * while the serial allocator stays collapsed.
 */

#include <iostream>
#include <vector>

#include "bench/fig_common.h"
#include "metrics/table.h"
#include "workloads/sim_bodies.h"

int
main(int argc, char** argv)
{
    using namespace hoard;
    bench::FigCli cli = bench::parse_cli(argc, argv);

    workloads::ThreadtestParams params;
    params.total_objects = cli.quick ? 8000 : 16000;
    params.iterations = cli.quick ? 3 : 6;

    std::cout << "# ABL-oversub: threadtest speedup at P=8 with"
                 " oversubscription (threads = k * P)\n";
    metrics::Table table({"threads/proc", "hoard", "serial", "private",
                          "ownership"});

    for (int k : {1, 2, 4}) {
        metrics::SpeedupOptions opt;
        opt.procs = {1, 8};
        opt.threads_per_proc = k;
        auto result = metrics::run_speedup_experiment(
            "abl-oversub", opt, workloads::threadtest_body(params));
        table.begin_row();
        table.cell_u64(static_cast<unsigned long long>(k));
        for (std::size_t i = 0; i < baselines::kAllKinds.size(); ++i)
            table.cell_double(result.at(1, i).speedup);
    }
    table.print(std::cout);

    std::cout << "\n# Expected: hoard's speedup tracks processor count"
                 " at every oversubscription level; serial stays"
                 " collapsed.\n";
    return 0;
}
