/**
 * @file
 * Overhead gate for the observability layer (src/obs/).
 *
 * Compares the malloc hot path (alloc/free pairs with LIFO reuse)
 * across three allocator variants in one binary:
 *
 *  - uninstrumented: a policy with kObsEnabled=false, so every obs
 *    hook and its argument computation folds out at compile time —
 *    the same code a -DHOARD_OBS=OFF build produces;
 *  - disabled: instrumentation compiled in, runtime flag off (the
 *    default production configuration);
 *  - idle sampler: tracing on with a timeline sample interval so
 *    large it never fires — the residue is the sampler's per-free
 *    cadence countdown;
 *  - enabled: tracing and lock profiling on (for reference only).
 *
 * The contract the CI gate enforces (`--check`): compiled-in-but-
 * disabled instrumentation costs less than 2% on the hot path, and
 * so does enabled-but-idle sampling relative to plain tracing-on
 * (the sampler must not tax users who enable tracing).  The same
 * budget gates the hardened free path (Config::hardened_free, the
 * production default): pointer validation on deallocate must stay
 * under 2% against a trusting build.  The sampling heap profiler
 * (obs/heap_profiler.h) gets the same treatment: compiled-in-but-
 * unarmed (rate 0, the default) must stay under the 2% budget against
 * a kProfilerEnabled=false build, and armed at the production default
 * rate (512 KiB mean between samples) under 5%
 * (HOARD_PROF_TOLERANCE_PCT).  The per-path latency histograms
 * (obs/latency.h) follow the profiler's contract: disarmed
 * (latency_histograms=false, the default) under 2% against a
 * kObsEnabled=false build, armed at the default sample period under
 * 5% (HOARD_LAT_TOLERANCE_PCT).
 * Measurements interleave repetitions across variants and compare
 * medians, so clock drift and frequency steps cancel instead of
 * biasing one variant.  Each repetition constructs a fresh allocator:
 * superblock placement (and with it cache-set luck) is re-rolled per
 * rep, so the median samples placement noise instead of freezing one
 * lucky or unlucky layout into the verdict.
 *
 *   ./build/bench/micro_obs_overhead            # report only
 *   ./build/bench/micro_obs_overhead --check    # exit 1 over budget
 *
 * Environment knobs: HOARD_OBS_TOLERANCE_PCT (default 2),
 * HOARD_OBS_OPS (pairs per repetition, default 2000000),
 * HOARD_OBS_REPS (default 9).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "core/hoard_allocator.h"
#include "os/page_provider.h"
#include "os/reserved_arena.h"
#include "policy/native_policy.h"

namespace {

using namespace hoard;

/** NativePolicy with the observability layer compiled out. */
struct NoObsPolicy : NativePolicy
{
    static constexpr bool kObsEnabled = false;
};

/**
 * NativePolicy with only the heap profiler compiled out — the
 * baseline that isolates the profiler's fast-path hook (the byte
 * countdown in HoardAllocator::profile_alloc) from the rest of the
 * observability layer, which stays identical on both sides.
 */
struct NoProfPolicy : NativePolicy
{
    static constexpr bool kProfilerEnabled = false;
};

/** Keeps the allocation from being optimized away. */
inline void
keep(void* p)
{
    asm volatile("" : : "r"(p) : "memory");
}

/** ns per alloc/free pair over @p pairs LIFO pairs at 64 bytes. */
template <typename AllocatorT>
double
time_pairs(AllocatorT& allocator, std::size_t pairs)
{
    // Warm the size class so the loop never maps fresh superblocks.
    void* warm = allocator.allocate(64);
    allocator.deallocate(warm);

    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < pairs; ++i) {
        void* p = allocator.allocate(64);
        keep(p);
        allocator.deallocate(p);
    }
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           static_cast<double>(pairs);
}

/**
 * ns per alloc/free pair on the huge-object path (above the largest
 * size class, so every pair maps and unmaps a dedicated span and
 * registers in the striped huge list).  Regression guard for the
 * slow-path sharding work: huge registration must cost only a striped
 * lock — uninstrumented and compiled-in-but-disabled builds have to
 * stay within the same overhead budget as the malloc hot path.
 */
template <typename AllocatorT>
double
time_huge_pairs(AllocatorT& allocator, std::size_t pairs)
{
    constexpr std::size_t kHugeBytes = 16384;
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < pairs; ++i) {
        void* p = allocator.allocate(kHugeBytes);
        keep(p);
        allocator.deallocate(p);
    }
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           static_cast<double>(pairs);
}

/**
 * ns per map/touch/unmap round trip of an S-aligned superblock span
 * straight against a page provider — the cost a fresh-superblock miss
 * pays below the allocator.  The touch forces the first page fault so
 * a provider that merely defers work to the first access cannot win
 * by cheating.  The reserved-arena provider recycles spans from its
 * free stacks (unmap = one madvise, map = lock-free pop with no
 * syscall); the mmap provider pays a full mmap/munmap VMA round trip
 * per pair.
 */
double
time_span_pairs(os::PageProvider& provider, std::size_t pairs)
{
    constexpr std::size_t kSpan = 64 * 1024;
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < pairs; ++i) {
        void* p = provider.map(kSpan, kSpan);
        keep(p);
        *static_cast<volatile char*>(p) = 1;
        provider.unmap(p, kSpan);
    }
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           static_cast<double>(pairs);
}

/**
 * Best-of-reps: the minimum is the standard noise-robust estimator
 * for tight timing loops — every source of interference (scheduler,
 * frequency steps, unlucky superblock placement) only ever adds time,
 * so the smallest sample is the closest to the true cost.
 */
double
best(const std::vector<double>& v)
{
    return *std::min_element(v.begin(), v.end());
}

/**
 * Median of per-rep paired overhead percentages.  Each rep times the
 * pair in ABBA order (baseline, variant, variant, baseline), so any
 * linear drift across the rep — thermal throttle, frequency ramp —
 * cancels exactly; the median across reps then discards the reps a
 * scheduler spike or unlucky superblock placement corrupted.
 * Comparing two independent best-of estimates instead flaps by a few
 * percent on a busy machine, wider than the budget being enforced.
 */
double
median_paired_pct(const std::vector<double>& baseline,
                  const std::vector<double>& variant)
{
    // baseline/variant hold two measurements per rep (ABBA order).
    std::vector<double> pct;
    pct.reserve(baseline.size() / 2);
    for (std::size_t r = 0; r + 1 < baseline.size(); r += 2) {
        const double b = baseline[r] + baseline[r + 1];
        const double v = variant[r] + variant[r + 1];
        pct.push_back((v - b) / b * 100.0);
    }
    std::sort(pct.begin(), pct.end());
    return pct[pct.size() / 2];
}

double
env_double(const char* name, double fallback)
{
    const char* s = std::getenv(name);
    if (s == nullptr || *s == '\0')
        return fallback;
    char* end = nullptr;
    double v = std::strtod(s, &end);
    return end == s ? fallback : v;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool check = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check") == 0)
            check = true;
    }

    const auto pairs = static_cast<std::size_t>(
        env_double("HOARD_OBS_OPS", 2e6));
    const int reps =
        static_cast<int>(env_double("HOARD_OBS_REPS", 9));
    const double tolerance_pct =
        env_double("HOARD_OBS_TOLERANCE_PCT", 2.0);

    Config config;
    config.heap_count = 4;
    Config unhardened_config = config;
    unhardened_config.hardened_free = false;
    Config traced_config = config;
    traced_config.observability = true;
    Config idle_sampler_config = traced_config;
    // An interval no steady_clock timestamp reaches: the cadence
    // countdown and claim check run, the sample never fires.
    idle_sampler_config.obs_sample_interval =
        std::numeric_limits<std::uint64_t>::max() / 2;
    Config armed_prof_config = config;
    // The production default documented in docs/PROFILING.md.
    armed_prof_config.profile_sample_rate = std::size_t{512} * 1024;
    const double prof_tolerance_pct =
        env_double("HOARD_PROF_TOLERANCE_PCT", 5.0);
    Config armed_lat_config = config;
    // Armed at the default fast-path sample period (Config doc).
    armed_lat_config.latency_histograms = true;
    const double lat_tolerance_pct =
        env_double("HOARD_LAT_TOLERANCE_PCT", 5.0);
    Config bg_idle_config = config;
    // Armed but idle: a pass interval no run ever reaches, so the
    // worker thread exists (parked in its timed wait) and the hot
    // paths take their armed-flag branches, but no pass competes for
    // locks during the measurement.
    bg_idle_config.background_engine = true;
    bg_idle_config.bg_interval_ticks =
        std::numeric_limits<std::uint64_t>::max() / 2;

    // Each rep times every variant twice in ABBA order per gated
    // pair, on a fresh allocator per measurement (placement re-rolled
    // each time); see median_paired_pct.
    std::vector<double> base_ns, disabled_ns, idle_ns, enabled_ns;
    std::vector<double> base_huge_ns, disabled_huge_ns;
    std::vector<double> unhardened_ns, hardened_ns;
    std::vector<double> noprof_off_ns, prof_off_ns;
    std::vector<double> noprof_on_ns, prof_on_ns;
    std::vector<double> nolat_off_ns, lat_off_ns;
    std::vector<double> nolat_on_ns, lat_on_ns;
    std::vector<double> nobg_ns, bg_idle_ns;
    // Each huge pair is an mmap/munmap round trip; scale the count so
    // the huge loop costs about as much wall clock as the hot path.
    const std::size_t huge_pairs = pairs / 256 + 1;
    auto run_base = [&] {
        HoardAllocator<NoObsPolicy> uninstrumented(config);
        base_ns.push_back(time_pairs(uninstrumented, pairs));
        base_huge_ns.push_back(
            time_huge_pairs(uninstrumented, huge_pairs));
    };
    auto run_disabled = [&] {
        HoardAllocator<NativePolicy> disabled(config);
        disabled_ns.push_back(time_pairs(disabled, pairs));
        disabled_huge_ns.push_back(
            time_huge_pairs(disabled, huge_pairs));
    };
    auto run_idle = [&] {
        HoardAllocator<NativePolicy> idle(idle_sampler_config);
        idle_ns.push_back(time_pairs(idle, pairs));
    };
    auto run_enabled = [&] {
        HoardAllocator<NativePolicy> enabled(traced_config);
        enabled_ns.push_back(time_pairs(enabled, pairs));
    };
    // Hardened-free pair: both uninstrumented, so the comparison
    // isolates the deallocate-side pointer validation.
    auto run_unhardened = [&] {
        HoardAllocator<NoObsPolicy> trusting(unhardened_config);
        unhardened_ns.push_back(time_pairs(trusting, pairs));
    };
    auto run_hardened = [&] {
        HoardAllocator<NoObsPolicy> hardened(config);
        hardened_ns.push_back(time_pairs(hardened, pairs));
    };
    // Profiler pairs: the compiled-out baseline appears once per gated
    // variant so each ABBA quartet is self-contained.
    auto run_noprof_off = [&] {
        HoardAllocator<NoProfPolicy> noprof(config);
        noprof_off_ns.push_back(time_pairs(noprof, pairs));
    };
    auto run_prof_off = [&] {
        HoardAllocator<NativePolicy> prof_off(config);
        prof_off_ns.push_back(time_pairs(prof_off, pairs));
    };
    auto run_noprof_on = [&] {
        HoardAllocator<NoProfPolicy> noprof(config);
        noprof_on_ns.push_back(time_pairs(noprof, pairs));
    };
    auto run_prof_on = [&] {
        HoardAllocator<NativePolicy> prof_on(armed_prof_config);
        prof_on_ns.push_back(time_pairs(prof_on, pairs));
    };
    // Latency-histogram pairs: same quartet shape as the profiler's.
    // The disarmed leg's baseline is kObsEnabled=false — the null
    // check on latency_ is part of what the 2% budget buys.
    auto run_nolat_off = [&] {
        HoardAllocator<NoObsPolicy> nolat(config);
        nolat_off_ns.push_back(time_pairs(nolat, pairs));
    };
    auto run_lat_off = [&] {
        HoardAllocator<NativePolicy> lat_off(config);
        lat_off_ns.push_back(time_pairs(lat_off, pairs));
    };
    auto run_nolat_on = [&] {
        HoardAllocator<NoObsPolicy> nolat(config);
        nolat_on_ns.push_back(time_pairs(nolat, pairs));
    };
    auto run_lat_on = [&] {
        HoardAllocator<NativePolicy> lat_on(armed_lat_config);
        lat_on_ns.push_back(time_pairs(lat_on, pairs));
    };
    // Background-engine quartet: disarmed (the default — the engine
    // must be free when off) against armed-but-idle (worker thread
    // alive on a wait so long it never passes; the residue is the
    // hot paths' armed-flag branches and the sleeping thread's
    // existence).
    auto run_nobg = [&] {
        HoardAllocator<NativePolicy> nobg(config);
        nobg_ns.push_back(time_pairs(nobg, pairs));
    };
    auto run_bg_idle = [&] {
        HoardAllocator<NativePolicy> bg(bg_idle_config);
        bg.start_background();
        bg_idle_ns.push_back(time_pairs(bg, pairs));
    };
    // Fresh-map quartet (page layer): superblock-span round trips
    // against each provider.  Fresh providers per measurement, like
    // the allocator pairs; the arena provider's one-time reservation
    // is amortized inside its own measurement, which only makes the
    // gate harder to pass.
    std::vector<double> mmap_span_ns, arena_span_ns;
    auto run_mmap_span = [&] {
        os::MmapPageProvider mmap_provider;
        mmap_span_ns.push_back(
            time_span_pairs(mmap_provider, huge_pairs));
    };
    auto run_arena_span = [&] {
        os::ReservedArenaProvider arena_provider;
        arena_span_ns.push_back(
            time_span_pairs(arena_provider, huge_pairs));
    };
    for (int r = 0; r < reps; ++r) {
        run_base();
        run_disabled();
        run_disabled();
        run_base();
        run_enabled();
        run_idle();
        run_idle();
        run_enabled();
        run_unhardened();
        run_hardened();
        run_hardened();
        run_unhardened();
        run_noprof_off();
        run_prof_off();
        run_prof_off();
        run_noprof_off();
        run_noprof_on();
        run_prof_on();
        run_prof_on();
        run_noprof_on();
        run_nolat_off();
        run_lat_off();
        run_lat_off();
        run_nolat_off();
        run_nolat_on();
        run_lat_on();
        run_lat_on();
        run_nolat_on();
        run_nobg();
        run_bg_idle();
        run_bg_idle();
        run_nobg();
        run_mmap_span();
        run_arena_span();
        run_arena_span();
        run_mmap_span();
    }

    const double base = best(base_ns);
    const double off = best(disabled_ns);
    const double idle = best(idle_ns);
    const double on = best(enabled_ns);
    const double off_pct = median_paired_pct(base_ns, disabled_ns);
    const double huge_base = best(base_huge_ns);
    const double huge_off = best(disabled_huge_ns);
    const double huge_off_pct =
        median_paired_pct(base_huge_ns, disabled_huge_ns);
    const double on_pct = (on - base) / base * 100.0;
    // The idle sampler rides on tracing-on, so its budget is measured
    // against the traced variant, not the uninstrumented one.
    const double idle_pct = median_paired_pct(enabled_ns, idle_ns);
    const double unhardened = best(unhardened_ns);
    const double hardened = best(hardened_ns);
    const double hardened_pct =
        median_paired_pct(unhardened_ns, hardened_ns);
    const double noprof = best(noprof_off_ns);
    const double prof_off = best(prof_off_ns);
    const double prof_off_pct =
        median_paired_pct(noprof_off_ns, prof_off_ns);
    const double prof_on = best(prof_on_ns);
    const double prof_on_pct =
        median_paired_pct(noprof_on_ns, prof_on_ns);
    const double lat_off = best(lat_off_ns);
    const double lat_off_pct =
        median_paired_pct(nolat_off_ns, lat_off_ns);
    const double lat_on = best(lat_on_ns);
    const double lat_on_pct = median_paired_pct(nolat_on_ns, lat_on_ns);
    const double nobg = best(nobg_ns);
    const double bg_idle = best(bg_idle_ns);
    const double bg_idle_pct = median_paired_pct(nobg_ns, bg_idle_ns);
    const double mmap_span = best(mmap_span_ns);
    const double arena_span = best(arena_span_ns);
    const double arena_span_pct =
        median_paired_pct(mmap_span_ns, arena_span_ns);

    std::printf("malloc hot path, 64 B pairs, best of %d x %zu:\n",
                reps, pairs);
    std::printf("  uninstrumented (kObsEnabled=false): %7.2f ns/pair\n",
                base);
    std::printf("  instrumented, runtime off:          %7.2f ns/pair "
                "(%+.2f%%)\n",
                off, off_pct);
    std::printf("  instrumented, tracing on:           %7.2f ns/pair "
                "(%+.2f%%)\n",
                on, on_pct);
    std::printf("  tracing on + idle sampler:          %7.2f ns/pair "
                "(%+.2f%% vs tracing on)\n",
                idle, idle_pct);
    std::printf("huge-object path, 16 KiB pairs, best of %d x %zu:\n",
                reps, huge_pairs);
    std::printf("  uninstrumented (kObsEnabled=false): %7.2f ns/pair\n",
                huge_base);
    std::printf("  instrumented, runtime off:          %7.2f ns/pair "
                "(%+.2f%%)\n",
                huge_off, huge_off_pct);
    std::printf("free-path validation, 64 B pairs, best of %d x %zu:\n",
                reps, pairs);
    std::printf("  trusting free (hardened_free=false): %6.2f ns/pair\n",
                unhardened);
    std::printf("  hardened free (default):             %6.2f ns/pair "
                "(%+.2f%%)\n",
                hardened, hardened_pct);
    std::printf("heap profiler, 64 B pairs, best of %d x %zu:\n", reps,
                pairs);
    std::printf("  profiler compiled out:              %7.2f ns/pair\n",
                noprof);
    std::printf("  compiled in, rate 0 (default):      %7.2f ns/pair "
                "(%+.2f%%)\n",
                prof_off, prof_off_pct);
    std::printf("  armed at 512 KiB mean rate:         %7.2f ns/pair "
                "(%+.2f%%)\n",
                prof_on, prof_on_pct);
    std::printf("latency histograms, 64 B pairs, best of %d x %zu:\n",
                reps, pairs);
    std::printf("  disarmed (default):                 %7.2f ns/pair "
                "(%+.2f%%)\n",
                lat_off, lat_off_pct);
    std::printf("  armed at default sample period:     %7.2f ns/pair "
                "(%+.2f%%)\n",
                lat_on, lat_on_pct);
    std::printf("background engine, 64 B pairs, best of %d x %zu:\n",
                reps, pairs);
    std::printf("  disarmed (default):                 %7.2f ns/pair\n",
                nobg);
    std::printf("  armed, worker idle:                 %7.2f ns/pair "
                "(%+.2f%%)\n",
                bg_idle, bg_idle_pct);
    std::printf("page layer, 64 KiB span map/touch/unmap, best of "
                "%d x %zu:\n",
                reps, huge_pairs);
    std::printf("  mmap provider (over-map + trim):    %7.2f ns/pair\n",
                mmap_span);
    std::printf("  reserved-arena provider:            %7.2f ns/pair "
                "(%+.2f%%)\n",
                arena_span, arena_span_pct);

    if (check) {
        bool failed = false;
        if (off_pct > tolerance_pct) {
            std::printf("FAIL: disabled-instrumentation overhead "
                        "%.2f%% exceeds %.2f%%\n",
                        off_pct, tolerance_pct);
            failed = true;
        } else {
            std::printf("PASS: disabled-instrumentation overhead "
                        "%.2f%% within %.2f%%\n",
                        off_pct, tolerance_pct);
        }
        if (huge_off_pct > tolerance_pct) {
            std::printf("FAIL: huge-path disabled-instrumentation "
                        "overhead %.2f%% exceeds %.2f%%\n",
                        huge_off_pct, tolerance_pct);
            failed = true;
        } else {
            std::printf("PASS: huge-path disabled-instrumentation "
                        "overhead %.2f%% within %.2f%%\n",
                        huge_off_pct, tolerance_pct);
        }
        if (idle_pct > tolerance_pct) {
            std::printf("FAIL: idle-sampler overhead %.2f%% exceeds "
                        "%.2f%%\n",
                        idle_pct, tolerance_pct);
            failed = true;
        } else {
            std::printf("PASS: idle-sampler overhead %.2f%% within "
                        "%.2f%%\n",
                        idle_pct, tolerance_pct);
        }
        if (hardened_pct > tolerance_pct) {
            std::printf("FAIL: hardened-free overhead %.2f%% exceeds "
                        "%.2f%%\n",
                        hardened_pct, tolerance_pct);
            failed = true;
        } else {
            std::printf("PASS: hardened-free overhead %.2f%% within "
                        "%.2f%%\n",
                        hardened_pct, tolerance_pct);
        }
        if (prof_off_pct > tolerance_pct) {
            std::printf("FAIL: unarmed-profiler overhead %.2f%% "
                        "exceeds %.2f%%\n",
                        prof_off_pct, tolerance_pct);
            failed = true;
        } else {
            std::printf("PASS: unarmed-profiler overhead %.2f%% within "
                        "%.2f%%\n",
                        prof_off_pct, tolerance_pct);
        }
        if (prof_on_pct > prof_tolerance_pct) {
            std::printf("FAIL: armed-profiler overhead %.2f%% exceeds "
                        "%.2f%%\n",
                        prof_on_pct, prof_tolerance_pct);
            failed = true;
        } else {
            std::printf("PASS: armed-profiler overhead %.2f%% within "
                        "%.2f%%\n",
                        prof_on_pct, prof_tolerance_pct);
        }
        if (lat_off_pct > tolerance_pct) {
            std::printf("FAIL: disarmed-latency overhead %.2f%% "
                        "exceeds %.2f%%\n",
                        lat_off_pct, tolerance_pct);
            failed = true;
        } else {
            std::printf("PASS: disarmed-latency overhead %.2f%% within "
                        "%.2f%%\n",
                        lat_off_pct, tolerance_pct);
        }
        if (lat_on_pct > lat_tolerance_pct) {
            std::printf("FAIL: armed-latency overhead %.2f%% exceeds "
                        "%.2f%%\n",
                        lat_on_pct, lat_tolerance_pct);
            failed = true;
        } else {
            std::printf("PASS: armed-latency overhead %.2f%% within "
                        "%.2f%%\n",
                        lat_on_pct, lat_tolerance_pct);
        }
        if (bg_idle_pct > tolerance_pct) {
            std::printf("FAIL: idle-background-engine overhead %.2f%% "
                        "exceeds %.2f%%\n",
                        bg_idle_pct, tolerance_pct);
            failed = true;
        } else {
            std::printf("PASS: idle-background-engine overhead %.2f%% "
                        "within %.2f%%\n",
                        bg_idle_pct, tolerance_pct);
        }
        // The arena carve must beat the mmap path outright — span
        // recycling exists to delete the VMA round trip, and a
        // regression to syscall parity would silently undo the page
        // layer's reason to exist.
        if (arena_span_pct >= 0.0) {
            std::printf("FAIL: arena span carve %+.2f%% vs mmap — "
                        "must be faster\n",
                        arena_span_pct);
            failed = true;
        } else {
            std::printf("PASS: arena span carve %.2f%% faster than "
                        "mmap path\n",
                        -arena_span_pct);
        }
        if (failed)
            return 1;
    }
    return 0;
}
