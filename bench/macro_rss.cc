/**
 * @file
 * macro-rss: spike-then-idle footprint under the LD_PRELOAD shim,
 * measuring what the purge pass buys in *resident* memory.
 *
 * The throughput benches ask "how fast"; a production deployment is
 * judged just as hard on "how big" — specifically RSS after a load
 * spike has passed.  The workload models that shape directly: a
 * multi-threaded burst allocates a large working set, frees all of it,
 * and then idles with a trickle of small churn (the light traffic that
 * keeps a server's free path warm).  Hoard's empty-superblock retention
 * means the spike's pages stay resident forever unless the
 * virtual-memory layer gives them back.
 *
 * The bench re-executes itself twice under LD_PRELOAD=libhoard.so
 * (same child protocol as macro_preload: HOARD_MACRO_RSS_RESULT names
 * the result file, HOARD_MACRO_QUICK shrinks the spike):
 *
 *  - retention run: purge disarmed — the seed behaviour, empties stay
 *    committed;
 *  - purge run: HOARD_RSS_TARGET=1 and HOARD_PURGE_INTERVAL=1, so the
 *    free-path cadence decommits every idle empty superblock via
 *    madvise while keeping the spans mapped for O(1) revival.
 *
 * Each child samples its own RSS from /proc/self/statm at the spike
 * peak and after the idle phase.  The gated metric is the idle-RSS
 * reduction the purge run achieves over the retention run (ISSUE 9
 * acceptance: >= 40%); peak RSS of both runs is reported as context
 * and as a sanity check that the two children did the same work.
 *
 *   ./build/bench/macro_rss [--quick] [--json FILE]
 *
 * HOARD_SHIM_PATH overrides the libhoard.so location.  A set
 * HOARD_TIMELINE passes through to the children, so the purge child
 * (executed last) leaves a v4 timeline whose committed-bytes column
 * falls through the idle phase — the CI rss-smoke leg greps for that.
 */

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench/fig_common.h"
#include "metrics/bench_report.h"

namespace {

struct RssParams
{
    int threads = 4;
    std::size_t block_bytes = 1024;
    std::size_t blocks_per_thread = 65536;  // 4 threads -> 256 MiB
    std::size_t trickle_ops = 400000;
};

RssParams
params_for(bool quick)
{
    RssParams params;
    if (quick) {
        params.blocks_per_thread = 16384;  // 64 MiB spike
        params.trickle_ops = 200000;
    }
    return params;
}

/** Resident set in bytes, from /proc/self/statm (field 2, pages). */
std::size_t
rss_bytes()
{
    std::FILE* f = std::fopen("/proc/self/statm", "r");
    if (f == nullptr)
        return 0;
    unsigned long long vsz = 0;
    unsigned long long resident = 0;
    const int got = std::fscanf(f, "%llu %llu", &vsz, &resident);
    std::fclose(f);
    if (got != 2)
        return 0;
    const long page = ::sysconf(_SC_PAGESIZE);
    return static_cast<std::size_t>(resident) *
           (page > 0 ? static_cast<std::size_t>(page) : 4096);
}

/**
 * Child half: spike, free, idle-with-trickle, report.  Every malloc
 * here goes through whatever allocator LD_PRELOAD installed.  Writes
 * "<peak_rss> <idle_rss>" to @p result_path.
 */
int
child_main(const char* result_path)
{
    const char* quick = std::getenv("HOARD_MACRO_QUICK");
    const RssParams params =
        params_for(quick != nullptr && quick[0] == '1');

    // Spike: every thread builds and touches a private slab of blocks.
    // Touching matters — an untouched block costs no RSS, and the
    // whole point is to commit real pages.
    std::vector<std::vector<void*>> slabs(
        static_cast<std::size_t>(params.threads));
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(params.threads));
    for (int t = 0; t < params.threads; ++t) {
        workers.emplace_back([&, t] {
            std::vector<void*>& slab =
                slabs[static_cast<std::size_t>(t)];
            slab.reserve(params.blocks_per_thread);
            for (std::size_t i = 0; i < params.blocks_per_thread; ++i) {
                void* p = std::malloc(params.block_bytes);
                if (p == nullptr)
                    std::abort();
                std::memset(p, 0x5a, params.block_bytes);
                slab.push_back(p);
            }
        });
    }
    for (std::thread& w : workers)
        w.join();
    const std::size_t peak = rss_bytes();

    // The spike passes: free everything (each slab from the main
    // thread — the cross-thread frees drive superblocks through the
    // global heap, exactly where idle empties accumulate).
    for (std::vector<void*>& slab : slabs) {
        for (void* p : slab)
            std::free(p);
        slab.clear();
        slab.shrink_to_fit();
    }

    // Idle: light trickle churn.  Under an armed purge config the
    // deallocate-tail cadence runs passes from inside these frees; the
    // retention run does the identical work so the comparison is fair.
    volatile char sink = 0;
    for (std::size_t i = 0; i < params.trickle_ops; ++i) {
        void* p = std::malloc(64);
        if (p == nullptr)
            std::abort();
        static_cast<char*>(p)[0] = static_cast<char>(i);
        sink = static_cast<char*>(p)[0];
        std::free(p);
    }
    (void)sink;
    const std::size_t idle = rss_bytes();

    std::ofstream os(result_path);
    os << peak << " " << idle << "\n";
    os.flush();
    return os.good() ? 0 : 1;
}

/** libhoard.so next to this binary's build tree, or the env override. */
std::string
shim_path(const char* argv0)
{
    if (const char* env = std::getenv("HOARD_SHIM_PATH"))
        return env;
    std::string dir = argv0 != nullptr ? argv0 : ".";
    std::size_t slash = dir.find_last_of('/');
    dir = slash == std::string::npos ? "." : dir.substr(0, slash);
    return dir + "/../src/shim/libhoard.so";
}

struct ChildRss
{
    double peak = 0.0;
    double idle = 0.0;
    bool ok = false;
};

/** Re-executes this binary under the shim with @p extra_env. */
ChildRss
run_child(const char* argv0, const std::string& shim,
          const std::string& result_path, bool quick,
          const std::string& extra_env)
{
    std::string cmd = "HOARD_MACRO_RSS_RESULT='" + result_path + "'";
    if (quick)
        cmd += " HOARD_MACRO_QUICK=1";
    if (!extra_env.empty())
        cmd += " " + extra_env;
    cmd += " LD_PRELOAD='" + shim + "' '" + std::string(argv0) + "'";

    ChildRss out;
    const int rc = std::system(cmd.c_str());
    if (rc == 0) {
        std::ifstream is(result_path);
        out.ok = static_cast<bool>(is >> out.peak >> out.idle) &&
                 out.peak > 0 && out.idle > 0;
    }
    std::remove(result_path.c_str());
    return out;
}

constexpr double kMiB = 1024.0 * 1024.0;

}  // namespace

int
main(int argc, char** argv)
{
    if (const char* result = std::getenv("HOARD_MACRO_RSS_RESULT"))
        return child_main(result);

    hoard::bench::FigCli cli = hoard::bench::parse_cli(argc, argv);
    const RssParams params = params_for(cli.quick);

    hoard::metrics::BenchReport report(cli.bench_name, cli.quick);
    report.set_title(
        "macro-rss: spike-then-idle RSS, purge pass vs retention");

    const double spike_mib =
        static_cast<double>(params.threads) *
        static_cast<double>(params.blocks_per_thread) *
        static_cast<double>(params.block_bytes) / kMiB;
    std::printf("# macro-rss: %d threads x %zu x %zu B spike "
                "(%.0f MiB), freed, then %zu-op idle trickle\n",
                params.threads, params.blocks_per_thread,
                params.block_bytes, spike_mib, params.trickle_ops);

    const std::string shim = shim_path(argc > 0 ? argv[0] : nullptr);
    if (::access(shim.c_str(), R_OK) != 0) {
        std::printf("  libhoard.so not found at %s — bench skipped\n",
                    shim.c_str());
        if (!cli.json_path.empty() &&
            !report.write_file(cli.json_path))
            return 1;
        return 0;
    }

    const std::string result_path =
        (cli.json_path.empty() ? std::string("macro_rss")
                               : cli.json_path) +
        ".child.tmp";
    const char* argv0 = argv[0];

    // Retention run first, purge run second: with HOARD_TIMELINE set
    // the last child's timeline survives, and the purge child's is the
    // one whose falling committed-bytes column CI asserts on.
    // Both runs use 64 KiB superblocks: at the 8 KiB default the 4 KiB
    // header page is half the span, capping what any purge could
    // reclaim; at 64 KiB a purged superblock gives back 15/16 of its
    // pages, so the measurement reflects the purge pass rather than
    // header overhead.
    const std::string common = "HOARD_SUPERBLOCK_BYTES=65536";
    const ChildRss keep = run_child(
        argv0, shim, result_path, cli.quick,
        common + " HOARD_RSS_TARGET= HOARD_PURGE_AGE=");
    const ChildRss purge = run_child(
        argv0, shim, result_path, cli.quick,
        common + " HOARD_RSS_TARGET=1 HOARD_PURGE_INTERVAL=1");
    if (!keep.ok || !purge.ok) {
        std::fprintf(stderr, "macro_rss: preload child failed "
                             "(retention ok=%d, purge ok=%d)\n",
                     keep.ok, purge.ok);
        return 1;
    }

    const double reduction_pct =
        (keep.idle - purge.idle) / keep.idle * 100.0;
    std::printf("  retention: peak %8.1f MiB   idle %8.1f MiB\n",
                keep.peak / kMiB, keep.idle / kMiB);
    std::printf("  purge:     peak %8.1f MiB   idle %8.1f MiB\n",
                purge.peak / kMiB, purge.idle / kMiB);
    std::printf("  idle RSS reduction:      %8.1f %%\n", reduction_pct);

    report.add_metric("retention_peak_rss_mib", keep.peak / kMiB,
                      "MiB", hoard::metrics::Better::info);
    report.add_metric("retention_idle_rss_mib", keep.idle / kMiB,
                      "MiB", hoard::metrics::Better::info);
    report.add_metric("purge_peak_rss_mib", purge.peak / kMiB, "MiB",
                      hoard::metrics::Better::info);
    report.add_metric("purge_idle_rss_mib", purge.idle / kMiB, "MiB",
                      hoard::metrics::Better::lower);
    report.add_metric("idle_rss_reduction_pct", reduction_pct, "%",
                      hoard::metrics::Better::higher);

    if (!cli.json_path.empty() && !report.write_file(cli.json_path))
        return 1;
    return 0;
}
