/**
 * @file
 * micro-prodcons: producer-consumer pipeline with and without the
 * asynchronous background engine.
 *
 * Paired fibers hand allocation batches through a mailbox: the
 * producer allocates from its heap, the consumer frees cross-thread,
 * forever.  This is the workload the background engine exists for —
 * every free is remote (settling work piles up on the producers'
 * heaps) and every producer burns through its size class fast enough
 * that the global bin runs dry (refill work lands on the malloc
 * critical path as global_fetch misses and fresh maps).
 *
 * Each P runs twice on the simulated machine:
 *
 *  - `fg` (engine disarmed): the baseline — consumers' frees queue on
 *    the remote MPSC lists until producers settle them inline, and
 *    every bin miss pays the superblock format/map on the hot path.
 *  - `bg` (engine armed): one extra simulated processor runs the
 *    worker fiber (HoardAllocator::bg_worker_sim — the deterministic
 *    analogue of the native helper thread), which refills bins,
 *    settles remote queues, and pre-commits spans off the critical
 *    path.
 *
 * Throughput is measured as allocations per virtual megacycle against
 * the *workload* fibers' finish clocks (the worker fiber's own tail
 * does not count against the run), and the per-path latency
 * histograms (exact mode) attribute where the win comes from: the
 * armed run's refill / global-fetch / fresh-map p99 should drop while
 * the fast paths stay put.  Both runs are deterministic, so the
 * throughput and p99 metrics are gated.
 *
 *   ./build/bench/micro_prodcons [--quick] [--bg on|off] [--json FILE]
 */

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench/fig_common.h"
#include "core/hoard_allocator.h"
#include "metrics/bench_report.h"
#include "metrics/table.h"
#include "obs/gating.h"
#include "obs/latency.h"
#include "policy/sim_policy.h"
#include "sim/machine.h"

namespace {

using namespace hoard;

/** One producer/consumer handoff slot (micro_remote_free's idiom). */
struct Mailbox
{
    std::atomic<void**> batch{nullptr};  ///< null = empty, ready to fill
};

struct PipeParams
{
    int rounds = 0;        ///< batches handed per pair
    int batch_blocks = 0;  ///< blocks per batch
    std::size_t object_bytes = 64;
    int worker_steps = 0;  ///< bg_step() calls the worker fiber makes
};

/** Spin-loop beat: virtual work so the scheduler can preempt. */
void
spin_pause()
{
    SimPolicy::work(CostKind::list_op);
}

struct CaseResult
{
    std::uint64_t workload_makespan = 0;  ///< max workload finish clock
    double allocs_per_mcycle = 0.0;
    obs::AllocatorSnapshot snap;
};

/**
 * Runs P workload fibers (P/2 pairs) on P simulated processors, plus
 * one helper processor running the worker fiber when @p bg is set.
 */
CaseResult
run_case(int nprocs, bool bg, const PipeParams& params)
{
    Config config;
    config.heap_count = nprocs;
    config.latency_histograms = true;
    config.latency_sample_period = 1;  // exact: every op in the histogram
    config.background_engine = bg;
    HoardAllocator<SimPolicy> allocator(config);

    const int pairs = nprocs / 2;
    std::vector<Mailbox> boxes(static_cast<std::size_t>(pairs));
    std::vector<std::vector<void*>> storage(
        static_cast<std::size_t>(pairs),
        std::vector<void*>(
            2 * static_cast<std::size_t>(params.batch_blocks)));
    std::vector<std::uint64_t> finish(static_cast<std::size_t>(nprocs),
                                      0);

    sim::Machine machine(nprocs + (bg ? 1 : 0));
    for (int tid = 0; tid < nprocs; ++tid) {
        machine.spawn(tid, tid, [&, tid] {
            SimPolicy::rebind_thread_index(tid);
            auto pair = static_cast<std::size_t>(tid / 2);
            Mailbox& box = boxes[pair];
            if (tid % 2 == 0) {
                // Producer: double-buffered so batch k+1 is being
                // carved while the consumer still frees batch k.
                void** store = storage[pair].data();
                for (int round = 0; round < params.rounds; ++round) {
                    void** batch =
                        store + (round % 2) * params.batch_blocks;
                    for (int i = 0; i < params.batch_blocks; ++i)
                        batch[i] =
                            allocator.allocate(params.object_bytes);
                    while (box.batch.load(std::memory_order_acquire) !=
                           nullptr)
                        spin_pause();
                    box.batch.store(batch, std::memory_order_release);
                }
                while (box.batch.load(std::memory_order_acquire) !=
                       nullptr)
                    spin_pause();
            } else {
                // Consumer: every free is cross-thread.
                for (int round = 0; round < params.rounds; ++round) {
                    void** batch;
                    while ((batch = box.batch.load(
                                std::memory_order_acquire)) == nullptr)
                        spin_pause();
                    for (int i = 0; i < params.batch_blocks; ++i)
                        allocator.deallocate(batch[i]);
                    box.batch.store(nullptr, std::memory_order_release);
                }
            }
            finish[static_cast<std::size_t>(tid)] =
                sim::Machine::current()->current_clock();
        });
    }
    if (bg) {
        // The helper core: the worker fiber runs the same bg_step()
        // job code the native thread would, a bounded number of times
        // so the machine terminates.  Steps are sized past the
        // workload's duration; the tail past the last workload finish
        // is excluded from the measurement below.
        machine.spawn(nprocs, nprocs, [&] {
            SimPolicy::rebind_thread_index(nprocs);
            allocator.bg_worker_sim(params.worker_steps);
        });
    }
    machine.run();

    CaseResult result;
    result.workload_makespan =
        *std::max_element(finish.begin(), finish.end());
    const double allocs = static_cast<double>(pairs) *
                          static_cast<double>(params.rounds) *
                          static_cast<double>(params.batch_blocks);
    result.allocs_per_mcycle =
        allocs /
        (static_cast<double>(result.workload_makespan) / 1e6);

    // Snapshots take virtual mutexes: quiesced walk on a fresh
    // one-processor checker machine.
    sim::Machine checker(1);
    checker.spawn(0, 0, [&allocator, &result] {
        result.snap = allocator.take_snapshot();
    });
    checker.run();
    return result;
}

/** The per-path p99s the engine is supposed to move. */
const obs::LatencyPath kHotPaths[] = {
    obs::LatencyPath::malloc_refill,
    obs::LatencyPath::malloc_global_fetch,
    obs::LatencyPath::malloc_fresh_map,
    obs::LatencyPath::free_remote_push,
};

}  // namespace

int
main(int argc, char** argv)
{
    bench::FigCli cli;
    std::string bg_mode = "both";
    cli.bench_name = bench::bench_basename(argc > 0 ? argv[0] : nullptr);
    cli::Parser parser(
        "producer-consumer pipeline, background engine on vs off");
    bench::register_cli(parser, cli);
    parser.add_string("--bg", "MODE",
                      "run only one engine mode: on | off\n"
                      "(default: both, for the comparison)",
                      &bg_mode);
    parser.parse(argc, argv);
    bench::finish_cli(cli);
    if (bg_mode != "both" && bg_mode != "on" && bg_mode != "off") {
        std::fprintf(stderr,
                     "micro_prodcons: --bg must be on or off\n");
        return 2;
    }

    PipeParams params;
    params.rounds = cli.quick ? 150 : 600;
    params.batch_blocks = 32;
    // A batch spans a whole superblock's worth of blocks, so every
    // round ends in bin-refill / fresh-map traffic — the slow path
    // the worker exists to absorb.  Small objects never deplete the
    // heap and leave the worker nothing to do.
    params.object_bytes = 2048;
    // Enough passes to cover the run; the measurement clips the tail.
    params.worker_steps = cli.quick ? 2000 : 8000;

    if (!obs::kCompiledIn) {
        std::cout << "# micro-prodcons: skipped (HOARD_OBS=OFF build"
                     " has no latency histograms)\n";
        return 0;
    }

    Config echo;
    metrics::BenchReport report(cli.bench_name, cli.quick);
    report.set_title(
        "micro-prodcons: pipeline throughput, background engine on/off");
    report.set_config(echo);

    std::cout << "# micro-prodcons: producers allocate, consumers free"
                 " cross-thread; bg adds one helper core\n";
    metrics::Table table({"P", "engine", "allocs/Mcycle",
                          "refill p99", "fetch p99", "fresh p99",
                          "bg refills", "bg drains"});
    bool healthy = true;
    for (int nprocs : {2, 4, 8}) {
        for (int pass = 0; pass < 2; ++pass) {
            const bool bg = pass == 1;
            if (bg_mode == "on" && !bg)
                continue;
            if (bg_mode == "off" && bg)
                continue;
            CaseResult r = run_case(nprocs, bg, params);
            healthy = healthy && r.snap.reconciles() &&
                      r.snap.all_heaps_satisfy_invariant();

            table.begin_row();
            table.cell_u64(static_cast<std::uint64_t>(nprocs));
            table.cell(bg ? "bg" : "fg");
            table.cell_double(r.allocs_per_mcycle, 1);
            table.cell_double(r.snap.latency
                                  .path(obs::LatencyPath::malloc_refill)
                                  .percentile(99),
                              0);
            table.cell_double(
                r.snap.latency
                    .path(obs::LatencyPath::malloc_global_fetch)
                    .percentile(99),
                0);
            table.cell_double(
                r.snap.latency
                    .path(obs::LatencyPath::malloc_fresh_map)
                    .percentile(99),
                0);
            table.cell_u64(r.snap.stats.bg_refills);
            table.cell_u64(r.snap.stats.bg_drains);

            const std::string prefix = "prodcons/p" +
                                       std::to_string(nprocs) + "/" +
                                       (bg ? "bg" : "fg");
            report.add_metric(prefix + "/allocs_per_mcycle",
                              r.allocs_per_mcycle, "1/Mcycle",
                              metrics::Better::higher);
            for (obs::LatencyPath path : kHotPaths) {
                const obs::LatencyHistogram& h =
                    r.snap.latency.path(path);
                if (h.count() == 0)
                    continue;
                report.add_metric(prefix + "/p99/" +
                                      obs::to_string(path),
                                  h.percentile(99), "cycles",
                                  metrics::Better::info);
            }
            if (bg) {
                report.add_metric(prefix + "/refills",
                                  static_cast<double>(
                                      r.snap.stats.bg_refills),
                                  "count", metrics::Better::info);
                report.add_metric(prefix + "/drains",
                                  static_cast<double>(
                                      r.snap.stats.bg_drains),
                                  "count", metrics::Better::info);
                report.add_metric(prefix + "/precommits",
                                  static_cast<double>(
                                      r.snap.stats.bg_precommits),
                                  "count", metrics::Better::info);
            }
        }
    }
    table.print(std::cout);

    std::cout << "\n# Expected: allocs/Mcycle rises in the bg rows —"
                 " the worker restocks the bins off the critical path,"
                 " so producers hit warm global fetches (~300 cycles)"
                 " instead of fresh maps (~3500); nonzero bg refills"
                 " confirm the worker ran.\n";
    std::cout << "health (reconcile + invariant, every cell): "
              << (healthy ? "PASS" : "FAIL") << "\n";
    report.add_metric("prodcons/health", healthy ? 1.0 : 0.0, "bool",
                      metrics::Better::higher);

    if (!cli.json_path.empty() && !report.write_file(cli.json_path))
        return 1;
    return healthy ? 0 : 1;
}
