/**
 * @file
 * Suite runner: drives every fig and tbl bench binary with --json and
 * merges the per-bench reports into one machine-readable suite file
 * (schema hoard-bench-suite-v1, default BENCH_hoard.json).
 *
 * The output is the repo's performance trajectory artifact: CI runs
 * `run_suite --quick`, archives the file, and gates it against the
 * committed baseline with bench/bench_compare.  See
 * docs/BENCHMARKING.md for the schema and workflow.
 *
 *   ./build/bench/run_suite --quick --out BENCH_hoard.json
 *
 * Bench binaries are expected next to this one (same build
 * directory); --bench-dir overrides.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/bench_report.h"
#include "metrics/json_value.h"

namespace {

using hoard::metrics::BenchReport;
using hoard::metrics::JsonValue;

/** Every bench that reports; run_suite must cover all of them. */
const char* const kBenches[] = {
    "fig_speedup_threadtest", "fig_speedup_larson",
    "fig_speedup_shbench",    "fig_speedup_activefalse",
    "fig_speedup_passivefalse", "fig_speedup_barneshut",
    "fig_speedup_bemsim",     "tbl_blowup",
    "tbl_latency",            "tbl_fragmentation",
    "tbl_taxonomy",           "tbl_uniprocessor",
    "tbl_synthetic_frag",     "micro_remote_free",
    "micro_global_contention", "macro_preload",
    "macro_rss",              "micro_prodcons",
};

std::string
dirname_of(const std::string& path)
{
    std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string(".")
                                      : path.substr(0, slash);
}

bool
read_file(const std::string& path, std::string& out)
{
    std::ifstream is(path);
    if (!is)
        return false;
    std::ostringstream ss;
    ss << is.rdbuf();
    out = ss.str();
    return true;
}

void
usage(std::ostream& os)
{
    os << "usage: run_suite [options]\n"
       << "  --quick          pass --quick to every bench\n"
       << "  --obs            pass --obs to the fig_* benches\n"
       << "  --out FILE       suite output path (default"
          " BENCH_hoard.json)\n"
       << "  --bench-dir DIR  directory holding the bench binaries\n"
       << "                   (default: this binary's directory)\n"
       << "  --help           show this message and exit\n";
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    bool obs = false;
    std::string out_path = "BENCH_hoard.json";
    std::string bench_dir = dirname_of(argv[0]);

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--obs") == 0) {
            obs = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--bench-dir") == 0 &&
                   i + 1 < argc) {
            bench_dir = argv[++i];
        } else if (std::strcmp(argv[i], "--help") == 0) {
            usage(std::cout);
            return 0;
        } else {
            std::cerr << "run_suite: unknown option '" << argv[i]
                      << "'\n";
            usage(std::cerr);
            return 2;
        }
    }

    JsonValue suite = JsonValue::make_object();
    suite.set("schema",
              JsonValue::make_string(BenchReport::kSuiteSchema));
    suite.set("quick", JsonValue::make_bool(quick));
    suite.set("environment", BenchReport::environment_json());
    JsonValue benches = JsonValue::make_object();

    int failures = 0;
    for (const char* bench : kBenches) {
        const std::string part = out_path + "." + bench + ".part.json";
        std::string cmd = bench_dir + "/" + bench +
                          " --no-diagnostics --json " + part;
        if (quick)
            cmd += " --quick";
        const bool is_fig = std::strncmp(bench, "fig_", 4) == 0;
        if (obs && is_fig)
            cmd += " --obs";
        cmd += " > /dev/null";

        std::cerr << "run_suite: " << bench << "...\n";
        int rc = std::system(cmd.c_str());
        std::string text;
        if (rc != 0 || !read_file(part, text)) {
            std::cerr << "run_suite: " << bench << " FAILED (rc=" << rc
                      << ")\n";
            ++failures;
            continue;
        }
        std::remove(part.c_str());

        std::string error;
        JsonValue doc = JsonValue::parse(text, &error);
        if (!doc.is_object()) {
            std::cerr << "run_suite: " << bench
                      << " produced invalid JSON: " << error << "\n";
            ++failures;
            continue;
        }
        benches.set(bench, std::move(doc));
    }
    suite.set("benches", std::move(benches));

    std::ofstream os(out_path);
    if (!os) {
        std::perror(out_path.c_str());
        return 2;
    }
    suite.write(os);
    os.flush();
    if (!os.good()) {
        std::cerr << "run_suite: write to " << out_path << " failed\n";
        return 2;
    }

    std::cerr << "run_suite: wrote " << out_path << " ("
              << (sizeof(kBenches) / sizeof(kBenches[0]) -
                  static_cast<std::size_t>(failures))
              << "/" << sizeof(kBenches) / sizeof(kBenches[0])
              << " benches)\n";
    return failures == 0 ? 0 : 1;
}
