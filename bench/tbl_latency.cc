/**
 * @file
 * TBL-latency (DESIGN.md §4 extension): per-operation latency
 * percentiles under contention, externally and internally measured.
 *
 * The speedup figures show throughput; this table shows what the
 * averages hide.  Two views of the same phenomenon:
 *
 *  1. External (all allocators, P in {1, 8}): each simulated thread
 *     runs a larson-style replacement loop and timestamps every
 *     free+alloc pair with its virtual clock; the per-allocator
 *     histograms are merged and the p50/p90/p99/max spread printed.
 *     The paper-era lesson this reproduces: the serial allocator's
 *     *tail* latency explodes with queueing (every op waits behind
 *     P-1 others) even though each operation's own work is unchanged.
 *
 *  2. Internal (hoard only): the allocator's own per-path latency
 *     histograms (src/obs/latency.h, armed in exact mode) attribute
 *     that tail to the stage that caused it — magazine hit vs refill
 *     vs global-bin fetch vs fresh map.  The bench cross-checks the
 *     instrumentation: histogram op counts must reconcile with the
 *     allocator's alloc/free counters, and the percentiles re-read
 *     from the Prometheus exposition must match the snapshot's.
 *
 * External percentiles ride on the same obs::LatencyHistogram the
 * allocator uses internally, so the bucket math is exercised from
 * both sides of the API.
 */

#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/factory.h"
#include "bench/fig_common.h"
#include "common/rng.h"
#include "core/hoard_allocator.h"
#include "metrics/bench_report.h"
#include "metrics/table.h"
#include "obs/gating.h"
#include "obs/latency.h"
#include "obs/trace_export.h"
#include "policy/sim_policy.h"
#include "sim/machine.h"

namespace {

using namespace hoard;

/**
 * Larson-style replacement loop on @p allocator, one simulated thread
 * per processor; returns the merged whole-op latency histogram.  A
 * non-null @p worker body gets its own extra processor — the --bg
 * axis uses it to schedule the background worker fiber alongside the
 * workload.
 */
obs::LatencyHistogram
measure(Allocator& allocator, int procs, int ops_per_thread,
        const std::function<void()>* worker = nullptr)
{
    std::vector<obs::LatencyHistogram> per_thread(
        static_cast<std::size_t>(procs));
    sim::Machine machine(procs + (worker != nullptr ? 1 : 0));
    if (worker != nullptr) {
        machine.spawn(procs, procs, [worker, procs] {
            SimPolicy::rebind_thread_index(procs);
            (*worker)();
        });
    }
    for (int t = 0; t < procs; ++t) {
        machine.spawn(t, t, [&, t] {
            detail::Rng rng(static_cast<std::uint64_t>(t) + 17);
            std::vector<void*> slots(128, nullptr);
            auto& hist = per_thread[static_cast<std::size_t>(t)];
            sim::Machine* m = sim::Machine::current();
            for (int op = 0; op < ops_per_thread; ++op) {
                auto slot = static_cast<std::size_t>(
                    rng.below(slots.size()));
                std::uint64_t t0 = m->current_clock();
                if (slots[slot] != nullptr)
                    allocator.deallocate(slots[slot]);
                slots[slot] = allocator.allocate(rng.range(16, 128));
                hist.record(m->current_clock() - t0);
            }
            for (void* p : slots) {
                if (p != nullptr)
                    allocator.deallocate(p);
            }
        });
    }
    machine.run();

    obs::LatencyHistogram merged;
    for (const auto& h : per_thread)
        merged.merge(h);
    return merged;
}

/**
 * Re-reads one `hoard_latency{path=..,quantile=..}` gauge back out of
 * the Prometheus exposition @p prom.  Returns false when the series
 * is missing.  Values compare as formatted strings — the exporter's
 * own put_double formatting is the contract being checked.
 */
bool
prom_gauge_matches(const std::string& prom, const char* path,
                   const char* quantile, double expect)
{
    const std::string needle = std::string("hoard_latency{path=\"") +
                               path + "\",quantile=\"" + quantile +
                               "\"} ";
    const std::size_t at = prom.find(needle);
    if (at == std::string::npos)
        return false;
    const std::size_t eol = prom.find('\n', at);
    const std::string got =
        prom.substr(at + needle.size(), eol - at - needle.size());
    char want[64];
    std::snprintf(want, sizeof(want), "%.3f", expect);
    return got == want;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace hoard;
    bench::FigCli cli = bench::parse_cli(argc, argv);
    const bool quick = cli.quick;
    const int ops = quick ? 2000 : 6000;
    metrics::BenchReport report(cli.bench_name, quick);
    report.set_title(
        "TBL-latency: per-op latency percentiles at P=1 and P=8");

    // External view: every allocator, uniprocessor and 8-way.  The
    // report keys for P=8 predate the P=1 column and keep their
    // original spelling (latency/<allocator>/...); the P=1 run adds
    // latency/p1/<allocator>/... alongside (BENCHMARKING.md: keys are
    // append-only).
    for (int procs : {1, 8}) {
        std::cout << "# TBL-latency: per-op latency (virtual cycles) "
                     "at P="
                  << procs << ", larson-style replacement loop\n";
        metrics::Table table(
            {"allocator", "mean", "p50", "p90", "p99", "max"});
        for (auto kind : baselines::kAllKinds) {
            Config config;
            config.heap_count = procs;
            auto allocator =
                baselines::make_allocator<SimPolicy>(kind, config);
            obs::LatencyHistogram hist =
                measure(*allocator, procs, ops);
            table.begin_row();
            table.cell(baselines::to_string(kind));
            table.cell_double(hist.mean(), 0);
            table.cell_double(hist.percentile(50), 0);
            table.cell_double(hist.percentile(90), 0);
            table.cell_double(hist.percentile(99), 0);
            table.cell_u64(hist.max());

            // Only Hoard's percentiles are a contract; the baselines
            // are the comparison story.
            const metrics::Better gate =
                kind == baselines::AllocatorKind::hoard
                    ? metrics::Better::lower
                    : metrics::Better::info;
            const std::string prefix =
                std::string("latency/") +
                (procs == 1 ? "p1/" : "") +
                baselines::to_string(kind);
            report.add_metric(prefix + "/p50", hist.percentile(50),
                              "cycles", gate);
            report.add_metric(prefix + "/p99", hist.percentile(99),
                              "cycles", gate);
            report.add_metric(prefix + "/mean", hist.mean(), "cycles",
                              metrics::Better::info);
            report.add_metric(prefix + "/max",
                              static_cast<double>(hist.max()),
                              "cycles", metrics::Better::info);
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    // Internal view: hoard's own per-path histograms, exact mode.
    // Runs at P=8 where the slow paths actually fire.  Skipped (not
    // failed) when the instrumentation is compiled out.
    if (!obs::kCompiledIn) {
        std::cout << "# hoard internal per-path latency: skipped "
                     "(HOARD_OBS=OFF build)\n";
    } else {
        Config config;
        config.heap_count = 8;
        config.latency_histograms = true;
        config.latency_sample_period = 1;
        HoardAllocator<SimPolicy> hoard_alloc(config);
        measure(hoard_alloc, 8, ops);

        // Snapshots take virtual mutexes: run the quiesced walk on a
        // fresh one-processor checker machine, like every other sim
        // introspection site.
        obs::AllocatorSnapshot snap;
        sim::Machine checker(1);
        checker.spawn(0, 0, [&hoard_alloc, &snap] {
            snap = hoard_alloc.take_snapshot();
        });
        checker.run();

        std::cout << "# hoard internal per-path latency (virtual "
                     "cycles, exact mode)\n";
        metrics::Table table(
            {"path", "n", "p50", "p99", "p99.9", "max"});
        for (int p = 0; p < obs::kLatencyPathCount; ++p) {
            const auto path = static_cast<obs::LatencyPath>(p);
            const obs::LatencyHistogram& h = snap.latency.path(path);
            if (h.count() == 0)
                continue;
            table.begin_row();
            table.cell(obs::to_string(path));
            table.cell_u64(h.count());
            table.cell_double(h.percentile(50), 0);
            table.cell_double(h.percentile(99), 0);
            table.cell_double(h.percentile(99.9), 0);
            table.cell_u64(h.max());
            const std::string prefix =
                std::string("latency/internal/") + obs::to_string(path);
            report.add_metric(prefix + "/p50", h.percentile(50),
                              "cycles", metrics::Better::info);
            report.add_metric(prefix + "/p99", h.percentile(99),
                              "cycles", metrics::Better::info);
            report.add_metric(prefix + "/p999", h.percentile(99.9),
                              "cycles", metrics::Better::info);
        }
        table.print(std::cout);

        // Exact mode records every accepted op exactly once, so the
        // histogram mass must reconcile with the op counters.
        std::uint64_t malloc_ops = 0, free_ops = 0;
        using obs::LatencyPath;
        for (LatencyPath p : {LatencyPath::malloc_fast,
                              LatencyPath::malloc_refill,
                              LatencyPath::malloc_global_fetch,
                              LatencyPath::malloc_fresh_map})
            malloc_ops += snap.latency.path(p).count();
        for (LatencyPath p : {LatencyPath::free_fast,
                              LatencyPath::free_spill,
                              LatencyPath::free_remote_push})
            free_ops += snap.latency.path(p).count();
        const bool counts_ok = malloc_ops == snap.stats.allocs &&
                               free_ops == snap.stats.frees;

        // And the Prometheus exposition must re-serialize the same
        // percentiles the snapshot computes.
        std::ostringstream prom;
        obs::write_prometheus(prom, snap);
        bool prom_ok = true;
        for (int p = 0; p < obs::kLatencyPathCount; ++p) {
            const auto path = static_cast<obs::LatencyPath>(p);
            const obs::LatencyHistogram& h = snap.latency.path(path);
            prom_ok = prom_ok &&
                      prom_gauge_matches(prom.str(), obs::to_string(path),
                                         "0.5", h.percentile(50)) &&
                      prom_gauge_matches(prom.str(), obs::to_string(path),
                                         "0.99", h.percentile(99)) &&
                      prom_gauge_matches(prom.str(), obs::to_string(path),
                                         "0.999", h.percentile(99.9));
        }

        std::cout << "count reconcile (histograms vs op counters): "
                  << (counts_ok ? "PASS" : "FAIL") << " ("
                  << malloc_ops << "/" << snap.stats.allocs
                  << " mallocs, " << free_ops << "/" << snap.stats.frees
                  << " frees)\n";
        std::cout << "prometheus reconcile (gauges vs snapshot): "
                  << (prom_ok ? "PASS" : "FAIL") << "\n";
        report.add_metric("latency/internal/count_reconcile",
                          counts_ok ? 1.0 : 0.0, "bool",
                          metrics::Better::higher);
        report.add_metric("latency/internal/prom_reconcile",
                          prom_ok ? 1.0 : 0.0, "bool",
                          metrics::Better::higher);
        if (!counts_ok || !prom_ok)
            return 1;

        // The --bg axis: the same P=8 run with the background engine
        // armed and its worker fiber scheduled on a ninth processor.
        // The worker refills bins and settles remote queues off the
        // critical path, so the slow-path p99s (refill, global fetch,
        // fresh map) should drop relative to the run above; the
        // deltas are recorded as info metrics for bench_compare.
        Config bg_config = config;
        bg_config.background_engine = true;
        HoardAllocator<SimPolicy> bg_alloc(bg_config);
        const std::function<void()> worker = [&bg_alloc] {
            bg_alloc.bg_worker_sim(4000);
        };
        measure(bg_alloc, 8, ops, &worker);

        obs::AllocatorSnapshot bg_snap;
        sim::Machine bg_checker(1);
        bg_checker.spawn(0, 0, [&bg_alloc, &bg_snap] {
            bg_snap = bg_alloc.take_snapshot();
        });
        bg_checker.run();

        std::cout << "\n# hoard internal per-path latency, background"
                     " engine armed (worker fiber on a 9th core)\n";
        metrics::Table bg_table(
            {"path", "n", "p99 (fg)", "p99 (bg)", "delta"});
        for (int p = 0; p < obs::kLatencyPathCount; ++p) {
            const auto path = static_cast<obs::LatencyPath>(p);
            const obs::LatencyHistogram& fg = snap.latency.path(path);
            const obs::LatencyHistogram& bg = bg_snap.latency.path(path);
            if (fg.count() == 0 && bg.count() == 0)
                continue;
            const double delta =
                fg.percentile(99) - bg.percentile(99);
            bg_table.begin_row();
            bg_table.cell(obs::to_string(path));
            bg_table.cell_u64(bg.count());
            bg_table.cell_double(fg.percentile(99), 0);
            bg_table.cell_double(bg.percentile(99), 0);
            bg_table.cell_double(delta, 0);
            const std::string prefix =
                std::string("latency/internal/bg/") +
                obs::to_string(path);
            report.add_metric(prefix + "/p99", bg.percentile(99),
                              "cycles", metrics::Better::info);
            report.add_metric(prefix + "/p99_delta", delta, "cycles",
                              metrics::Better::info);
        }
        bg_table.print(std::cout);
        std::printf("bg worker: %llu refills, %llu drains, %llu"
                    " precommits\n",
                    static_cast<unsigned long long>(
                        bg_snap.stats.bg_refills),
                    static_cast<unsigned long long>(
                        bg_snap.stats.bg_drains),
                    static_cast<unsigned long long>(
                        bg_snap.stats.bg_precommits));
        report.add_metric("latency/internal/bg/refills",
                          static_cast<double>(bg_snap.stats.bg_refills),
                          "count", metrics::Better::info);
        report.add_metric("latency/internal/bg/drains",
                          static_cast<double>(bg_snap.stats.bg_drains),
                          "count", metrics::Better::info);
    }

    std::cout << "\n# Expected: hoard's tail stays within a small"
                 " multiple of its median; the serial allocator's p99"
                 " and max blow up with queueing delay.\n";
    if (!cli.json_path.empty() && !report.write_file(cli.json_path))
        return 1;
    return 0;
}
