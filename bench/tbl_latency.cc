/**
 * @file
 * TBL-latency (DESIGN.md §4 extension): per-operation latency
 * percentiles under contention.
 *
 * The speedup figures show throughput; this table shows what the
 * averages hide.  Each simulated thread runs a larson-style
 * replacement loop and timestamps every free+alloc pair with its
 * virtual clock; the per-allocator histograms are merged and the
 * p50/p90/p99/max spread printed.  The paper-era lesson this
 * reproduces: the serial allocator's *tail* latency explodes with
 * queueing (every op waits behind P-1 others) even though each
 * operation's own work is unchanged.
 */

#include <iostream>
#include <memory>
#include <vector>

#include "baselines/factory.h"
#include "bench/fig_common.h"
#include "common/rng.h"
#include "metrics/bench_report.h"
#include "metrics/latency.h"
#include "metrics/table.h"
#include "policy/sim_policy.h"
#include "sim/machine.h"

namespace {

using namespace hoard;

metrics::LatencyHistogram
measure(baselines::AllocatorKind kind, int procs, int ops_per_thread)
{
    Config config;
    config.heap_count = procs;
    auto allocator = baselines::make_allocator<SimPolicy>(kind, config);

    std::vector<metrics::LatencyHistogram> per_thread(
        static_cast<std::size_t>(procs));
    sim::Machine machine(procs);
    for (int t = 0; t < procs; ++t) {
        machine.spawn(t, t, [&, t] {
            detail::Rng rng(static_cast<std::uint64_t>(t) + 17);
            std::vector<void*> slots(128, nullptr);
            auto& hist = per_thread[static_cast<std::size_t>(t)];
            sim::Machine* m = sim::Machine::current();
            for (int op = 0; op < ops_per_thread; ++op) {
                auto slot = static_cast<std::size_t>(
                    rng.below(slots.size()));
                std::uint64_t t0 = m->current_clock();
                if (slots[slot] != nullptr)
                    allocator->deallocate(slots[slot]);
                slots[slot] =
                    allocator->allocate(rng.range(16, 128));
                hist.record(m->current_clock() - t0);
            }
            for (void* p : slots) {
                if (p != nullptr)
                    allocator->deallocate(p);
            }
        });
    }
    machine.run();

    metrics::LatencyHistogram merged;
    for (const auto& h : per_thread)
        merged.merge(h);
    return merged;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace hoard;
    bench::FigCli cli = bench::parse_cli(argc, argv);
    const bool quick = cli.quick;
    const int procs = 8;
    const int ops = quick ? 2000 : 6000;
    metrics::BenchReport report(cli.bench_name, quick);
    report.set_title("TBL-latency: per-op latency percentiles at P=8");

    std::cout << "# TBL-latency: per-op latency (virtual cycles) at P="
              << procs << ", larson-style replacement loop\n";
    metrics::Table table(
        {"allocator", "mean", "p50", "p90", "p99", "max"});

    for (auto kind : baselines::kAllKinds) {
        metrics::LatencyHistogram hist = measure(kind, procs, ops);
        table.begin_row();
        table.cell(baselines::to_string(kind));
        table.cell_double(hist.mean(), 0);
        table.cell_double(hist.percentile(50), 0);
        table.cell_double(hist.percentile(90), 0);
        table.cell_double(hist.percentile(99), 0);
        table.cell_u64(hist.max());

        // Only Hoard's percentiles are a contract; the baselines are
        // the comparison story.
        const metrics::Better gate =
            kind == baselines::AllocatorKind::hoard
                ? metrics::Better::lower
                : metrics::Better::info;
        const std::string prefix =
            std::string("latency/") + baselines::to_string(kind);
        report.add_metric(prefix + "/p50", hist.percentile(50),
                          "cycles", gate);
        report.add_metric(prefix + "/p99", hist.percentile(99),
                          "cycles", gate);
        report.add_metric(prefix + "/mean", hist.mean(), "cycles",
                          metrics::Better::info);
        report.add_metric(prefix + "/max",
                          static_cast<double>(hist.max()), "cycles",
                          metrics::Better::info);
    }
    table.print(std::cout);

    std::cout << "\n# Expected: hoard's tail stays within a small"
                 " multiple of its median; the serial allocator's p99"
                 " and max blow up with queueing delay.\n";
    if (!cli.json_path.empty() && !report.write_file(cli.json_path))
        return 1;
    return 0;
}
