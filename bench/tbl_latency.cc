/**
 * @file
 * TBL-latency (DESIGN.md §4 extension): per-operation latency
 * percentiles under contention.
 *
 * The speedup figures show throughput; this table shows what the
 * averages hide.  Each simulated thread runs a larson-style
 * replacement loop and timestamps every free+alloc pair with its
 * virtual clock; the per-allocator histograms are merged and the
 * p50/p90/p99/max spread printed.  The paper-era lesson this
 * reproduces: the serial allocator's *tail* latency explodes with
 * queueing (every op waits behind P-1 others) even though each
 * operation's own work is unchanged.
 */

#include <cstring>
#include <iostream>
#include <memory>
#include <vector>

#include "baselines/factory.h"
#include "common/rng.h"
#include "metrics/latency.h"
#include "metrics/table.h"
#include "policy/sim_policy.h"
#include "sim/machine.h"

namespace {

using namespace hoard;

metrics::LatencyHistogram
measure(baselines::AllocatorKind kind, int procs, int ops_per_thread)
{
    Config config;
    config.heap_count = procs;
    auto allocator = baselines::make_allocator<SimPolicy>(kind, config);

    std::vector<metrics::LatencyHistogram> per_thread(
        static_cast<std::size_t>(procs));
    sim::Machine machine(procs);
    for (int t = 0; t < procs; ++t) {
        machine.spawn(t, t, [&, t] {
            detail::Rng rng(static_cast<std::uint64_t>(t) + 17);
            std::vector<void*> slots(128, nullptr);
            auto& hist = per_thread[static_cast<std::size_t>(t)];
            sim::Machine* m = sim::Machine::current();
            for (int op = 0; op < ops_per_thread; ++op) {
                auto slot = static_cast<std::size_t>(
                    rng.below(slots.size()));
                std::uint64_t t0 = m->current_clock();
                if (slots[slot] != nullptr)
                    allocator->deallocate(slots[slot]);
                slots[slot] =
                    allocator->allocate(rng.range(16, 128));
                hist.record(m->current_clock() - t0);
            }
            for (void* p : slots) {
                if (p != nullptr)
                    allocator->deallocate(p);
            }
        });
    }
    machine.run();

    metrics::LatencyHistogram merged;
    for (const auto& h : per_thread)
        merged.merge(h);
    return merged;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    const int procs = 8;
    const int ops = quick ? 2000 : 6000;

    std::cout << "# TBL-latency: per-op latency (virtual cycles) at P="
              << procs << ", larson-style replacement loop\n";
    metrics::Table table(
        {"allocator", "mean", "p50", "p90", "p99", "max"});

    for (auto kind : baselines::kAllKinds) {
        metrics::LatencyHistogram hist = measure(kind, procs, ops);
        table.begin_row();
        table.cell(baselines::to_string(kind));
        table.cell_double(hist.mean(), 0);
        table.cell_double(hist.percentile(50), 0);
        table.cell_double(hist.percentile(90), 0);
        table.cell_double(hist.percentile(99), 0);
        table.cell_u64(hist.max());
    }
    table.print(std::cout);

    std::cout << "\n# Expected: hoard's tail stays within a small"
                 " multiple of its median; the serial allocator's p99"
                 " and max blow up with queueing delay.\n";
    return 0;
}
