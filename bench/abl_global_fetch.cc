/**
 * @file
 * ABL-global-fetch: the global-heap batched-transfer depth.
 *
 * `Config::global_fetch_batch` is the N of the slow path: a heap that
 * misses locally pulls up to N superblocks from its per-class global
 * bin under one bin-lock acquisition, and `maybe_release_superblock`
 * splices every eligible victim back in one visit.  Larger N
 * amortizes the lock hand-off and the transfer latency over more
 * superblocks; the cost is over-fetch — superblocks parked on a heap
 * that needed only one, which the emptiness invariant then has to
 * shed again.  This bench sweeps N on the virtual multiprocessor
 * (threadtest and larson makespans at P=8, global-heap bin-lock
 * traffic) and on the native build (fetch/transfer counter totals),
 * with `release_threshold = empty_fraction` so superblocks actually
 * migrate through the global heap instead of idling in band 0.
 */

#include <iostream>
#include <vector>

#include "core/hoard_allocator.h"
#include "metrics/speedup.h"
#include "metrics/table.h"
#include "policy/native_policy.h"
#include "workloads/native_bodies.h"
#include "workloads/runners.h"
#include "workloads/sim_bodies.h"

int
main()
{
    using namespace hoard;
    const std::vector<std::size_t> batch_sizes = {1, 2, 4, 8, 16};
    const int nthreads = 4;

    workloads::ThreadtestParams tt;
    tt.total_objects = 16000;
    tt.iterations = 6;

    workloads::LarsonParams la;
    la.rounds_per_epoch = 60000;
    la.epochs = 2;

    std::cout << "# ABL-global-fetch: fetch/transfer batch sweep"
                 " (hoard only)\n";
    metrics::Table table(
        {"batch sbs", "threadtest P=8 makespan", "larson P=8 makespan",
         "larson contended locks", "fetches (native larson)",
         "transfers (native larson)", "bin hits", "cache pops",
         "A-peak (native larson)"});

    for (std::size_t batch : batch_sizes) {
        Config config;
        config.heap_count = nthreads;
        config.global_fetch_batch = batch;
        // Paper-literal transfer mode (any superblock at least f
        // empty is a victim) with zero slack, so the global bins see
        // steady two-way traffic and the batch depth actually
        // matters; the default K=8 absorbs these workloads entirely
        // inside the per-processor heaps.
        config.release_threshold = config.empty_fraction;
        config.slack_superblocks = 0;

        metrics::SpeedupOptions opt;
        opt.procs = {1, 8};
        opt.base_config = config;
        opt.kinds = {baselines::AllocatorKind::hoard};
        auto tt_sim = metrics::run_speedup_experiment(
            "abl-global-fetch", opt, workloads::threadtest_body(tt));
        auto la_sim = metrics::run_speedup_experiment(
            "abl-global-fetch", opt, workloads::larson_body(la));

        HoardAllocator<NativePolicy> allocator(config);
        auto body = workloads::native_larson_body(la);
        workloads::native_run(nthreads, [&](int tid) {
            body(allocator, tid, nthreads);
        });

        table.begin_row();
        table.cell_u64(batch);
        table.cell_u64(tt_sim.cells[1][0].makespan);
        table.cell_u64(la_sim.cells[1][0].makespan);
        table.cell_u64(la_sim.cells[1][0].lock_contentions);
        table.cell_u64(allocator.stats().global_fetches.get());
        table.cell_u64(allocator.stats().superblock_transfers.get());
        table.cell_u64(allocator.stats().global_bin_hits.get());
        table.cell_u64(allocator.stats().cache_pops.get());
        table.cell(metrics::format_bytes(
            allocator.stats().held_bytes.peak()));
    }
    table.print(std::cout);

    std::cout << "\n# Expected: threadtest (thread-local churn)"
                 " improves as one batch covers a whole allocation"
                 " burst; larson (cross-thread recycling) worsens —"
                 " at zero slack every over-fetched superblock is"
                 " extra material for the free/transfer ping-pong."
                 " The default batch is a compromise between the"
                 " two shapes.\n";
    return 0;
}
