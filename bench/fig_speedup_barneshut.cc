/**
 * @file
 * FIG-barnes (DESIGN.md §4): speedup of Barnes-Hut (octree built per
 * step through the allocator under test, force computation, teardown),
 * 1..14 simulated processors.
 *
 * Paper shape to match: gaps between allocators are modest (compute
 * dominates) but ordered — Hoard >= private classes >> serial.
 */

#include "bench/fig_common.h"
#include "workloads/sim_bodies.h"

int
main(int argc, char** argv)
{
    using namespace hoard;
    bench::FigCli cli = bench::parse_cli(argc, argv);

    workloads::BarnesHutParams params;
    params.total_systems = 28;
    params.bodies_per_system = cli.quick ? 120 : 150;
    params.steps = 2;

    bench::emit_figure("FIG-barnes: Barnes-Hut speedup vs processors",
                       bench::paper_options(cli),
                       workloads::barneshut_body(params), cli);
    return 0;
}
