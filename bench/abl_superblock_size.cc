/**
 * @file
 * ABL-S (DESIGN.md §6): sweep of the superblock size S.
 *
 * Bigger superblocks amortize locking and OS traffic over more blocks
 * (fewer fetches, fewer transfers) but coarsen the emptiness granule —
 * a heap can strand almost a whole superblock per size class, so
 * fragmentation rises.  Measured natively on shbench (mixed sizes make
 * the per-class stranding visible) and simulated on threadtest at P=8.
 */

#include <iostream>
#include <vector>

#include "core/hoard_allocator.h"
#include "metrics/speedup.h"
#include "metrics/table.h"
#include "policy/native_policy.h"
#include "workloads/native_bodies.h"
#include "workloads/runners.h"
#include "workloads/sim_bodies.h"

int
main()
{
    using namespace hoard;
    const std::vector<std::size_t> sizes = {4096, 8192, 16384, 65536};
    const int nthreads = 4;

    workloads::ShbenchParams sh;
    sh.operations = 60000;
    sh.working_set = 300;

    workloads::ThreadtestParams tt;
    tt.total_objects = 8000;
    tt.iterations = 4;

    std::cout << "# ABL-S: superblock size sweep (hoard only)\n";
    metrics::Table table({"S", "A-peak", "frag", "os superblocks",
                          "global fetches", "sim makespan P=8"});

    for (std::size_t s : sizes) {
        Config config;
        config.superblock_bytes = s;
        config.heap_count = nthreads;

        HoardAllocator<NativePolicy> allocator(config);
        auto body = workloads::native_shbench_body(sh);
        workloads::native_run(nthreads, [&](int tid) {
            body(allocator, tid, nthreads);
        });

        metrics::SpeedupOptions opt;
        opt.procs = {1, 8};
        opt.base_config = config;
        opt.kinds = {baselines::AllocatorKind::hoard};
        auto sim = metrics::run_speedup_experiment(
            "abl-S", opt, workloads::threadtest_body(tt));

        const detail::AllocatorStats& stats = allocator.stats();
        table.begin_row();
        table.cell(metrics::format_bytes(s));
        table.cell(metrics::format_bytes(stats.held_bytes.peak()));
        table.cell_double(stats.fragmentation());
        table.cell_u64(stats.superblock_allocs.get());
        table.cell_u64(stats.global_fetches.get());
        table.cell_u64(sim.cells[1][0].makespan);
    }
    table.print(std::cout);

    std::cout << "\n# Expected: OS superblock count and global traffic"
                 " fall as S grows; fragmentation rises.\n";
    return 0;
}
