/**
 * @file
 * Regression gate: diffs two suite (or single-bench) report files.
 *
 * Loads BASE and NEXT (hoard-bench-suite-v1 or hoard-bench-report-v1),
 * pairs their metrics by key, and prints the per-metric delta.  A
 * metric regresses when it moves more than the threshold in its
 * declared worse direction ("better": "higher"|"lower"; "info"
 * metrics are never gated).  Exits 1 when any metric regressed, 2 on
 * usage or parse errors — so CI can gate on the exit code.
 *
 *   ./build/bench/bench_compare BASE.json NEXT.json \
 *       [--max-regress-pct 10]
 *
 * Metrics present in BASE but missing from NEXT are listed as
 * warnings, not regressions: benches come and go across revisions.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "metrics/bench_report.h"
#include "metrics/json_value.h"

namespace {

using hoard::metrics::CompareResult;
using hoard::metrics::JsonValue;
using hoard::metrics::MetricDelta;

bool
load(const std::string& path, JsonValue& out)
{
    std::ifstream is(path);
    if (!is) {
        std::perror(path.c_str());
        return false;
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    std::string error;
    out = JsonValue::parse(ss.str(), &error);
    if (!out.is_object()) {
        std::cerr << path << ": invalid JSON: " << error << "\n";
        return false;
    }
    return true;
}

void
usage(std::ostream& os)
{
    os << "usage: bench_compare BASE.json NEXT.json"
          " [--max-regress-pct PCT]\n"
       << "  exits 0 when no gated metric regressed past PCT"
          " (default 10),\n"
       << "  1 on regression, 2 on usage/parse errors\n";
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string base_path, next_path;
    double max_regress_pct = 10.0;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--max-regress-pct") == 0 &&
            i + 1 < argc) {
            char* end = nullptr;
            max_regress_pct = std::strtod(argv[++i], &end);
            if (end == argv[i] || max_regress_pct < 0.0) {
                std::cerr << "bench_compare: bad threshold '" << argv[i]
                          << "'\n";
                return 2;
            }
        } else if (std::strcmp(argv[i], "--help") == 0) {
            usage(std::cout);
            return 0;
        } else if (argv[i][0] == '-') {
            std::cerr << "bench_compare: unknown option '" << argv[i]
                      << "'\n";
            usage(std::cerr);
            return 2;
        } else if (base_path.empty()) {
            base_path = argv[i];
        } else if (next_path.empty()) {
            next_path = argv[i];
        } else {
            std::cerr << "bench_compare: too many arguments\n";
            usage(std::cerr);
            return 2;
        }
    }
    if (base_path.empty() || next_path.empty()) {
        usage(std::cerr);
        return 2;
    }

    JsonValue base, next;
    if (!load(base_path, base) || !load(next_path, next))
        return 2;

    CompareResult result =
        hoard::metrics::compare_reports(base, next, max_regress_pct);

    std::printf("%-58s %14s %14s %9s\n", "metric", "base", "next",
                "change");
    for (const MetricDelta& d : result.deltas) {
        std::printf("%-58s %14.4g %14.4g %+8.2f%%%s\n", d.key.c_str(),
                    d.base, d.next, d.change_pct,
                    d.regression ? "  REGRESSION" : "");
    }
    for (const std::string& key : result.missing)
        std::printf("%-58s missing from %s\n", key.c_str(),
                    next_path.c_str());

    std::printf("\n%zu metric(s) compared, %d regression(s) past "
                "%.1f%%, %zu missing\n",
                result.deltas.size(), result.regressions,
                max_regress_pct, result.missing.size());
    return result.ok() ? 0 : 1;
}
