/**
 * @file
 * Regression gate: diffs two suite (or single-bench) report files.
 *
 * Loads BASE and NEXT (hoard-bench-suite-v1 or hoard-bench-report-v1),
 * pairs their metrics by key, and prints the per-metric delta.  A
 * metric regresses when it moves more than the threshold in its
 * declared worse direction ("better": "higher"|"lower"; "info"
 * metrics are never gated).  Exits 1 when any metric regressed, 2 on
 * usage or parse errors — so CI can gate on the exit code.
 *
 *   ./build/bench/bench_compare BASE.json NEXT.json \
 *       [--max-regress-pct 10]
 *
 * Metrics present in BASE but missing from NEXT are listed as
 * warnings, not regressions: benches come and go across revisions.
 *
 * A second mode summarizes a gauge timeline instead of diffing
 * reports:
 *
 *   ./build/bench/bench_compare --timeline RUN.jsonl
 *
 * accepts the v1 schema (hoard-timeline-v1, with the old
 * "bin_hits"/"bin_misses" keys), v2 (global_bin_hits/misses,
 * bad_free_* counters, profiler byte totals), v3 (per-path
 * "lat_<path>_n"/"lat_<path>_p99" latency series), and v4 (the
 * committed/reserved/purged footprint split; "os" stays as an alias
 * of committed), so timelines captured before any extension stay
 * readable.  Exits 0 on a clean read, 2 on parse errors or an
 * unknown schema.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "metrics/bench_report.h"
#include "metrics/json_value.h"

namespace {

using hoard::metrics::CompareResult;
using hoard::metrics::JsonValue;
using hoard::metrics::MetricDelta;

bool
load(const std::string& path, JsonValue& out)
{
    std::ifstream is(path);
    if (!is) {
        std::perror(path.c_str());
        return false;
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    std::string error;
    out = JsonValue::parse(ss.str(), &error);
    if (!out.is_object()) {
        std::cerr << path << ": invalid JSON: " << error << "\n";
        return false;
    }
    return true;
}

void
usage(std::ostream& os)
{
    os << "usage: bench_compare BASE.json NEXT.json"
          " [--max-regress-pct PCT]\n"
       << "       bench_compare --timeline RUN.jsonl\n"
       << "  exits 0 when no gated metric regressed past PCT"
          " (default 10),\n"
       << "  1 on regression, 2 on usage/parse errors\n"
       << "  --timeline summarizes a gauge timeline (schema\n"
       << "  hoard-timeline-v1 through -v5) instead of diffing"
          " reports\n";
}

/**
 * Summarizes one timeline JSONL file.  The counters in a sample are
 * cumulative, so the last line carries the run totals; gauges are
 * scanned for peaks.  Returns the process exit code.
 */
int
summarize_timeline(const std::string& path)
{
    std::ifstream is(path);
    if (!is) {
        std::perror(path.c_str());
        return 2;
    }

    std::size_t samples = 0;
    std::uint64_t first_ts = 0;
    double peak_in_use = 0.0, peak_held = 0.0, peak_blowup = 0.0;
    JsonValue last;
    bool v1_seen = false;
    bool v3_seen = false;
    bool v4_seen = false;
    bool v5_seen = false;
    std::string line;
    for (std::size_t lineno = 1; std::getline(is, line); ++lineno) {
        if (line.empty())
            continue;
        std::string error;
        JsonValue doc = JsonValue::parse(line, &error);
        if (!doc.is_object()) {
            std::cerr << path << ":" << lineno
                      << ": invalid JSON: " << error << "\n";
            return 2;
        }
        const std::string schema = doc.string_or("schema", "");
        if (schema != "hoard-timeline-v1" &&
            schema != "hoard-timeline-v2" &&
            schema != "hoard-timeline-v3" &&
            schema != "hoard-timeline-v4" &&
            schema != "hoard-timeline-v5") {
            std::cerr << path << ":" << lineno << ": unknown schema '"
                      << schema << "'\n";
            return 2;
        }
        v1_seen = v1_seen || schema == "hoard-timeline-v1";
        v3_seen = v3_seen || schema == "hoard-timeline-v3" ||
                  schema == "hoard-timeline-v4" ||
                  schema == "hoard-timeline-v5";
        v4_seen = v4_seen || schema == "hoard-timeline-v4" ||
                  schema == "hoard-timeline-v5";
        v5_seen = v5_seen || schema == "hoard-timeline-v5";
        if (samples == 0)
            first_ts = static_cast<std::uint64_t>(
                doc.number_or("ts", 0.0));
        peak_in_use = std::max(peak_in_use, doc.number_or("in_use", 0));
        peak_held = std::max(peak_held, doc.number_or("held", 0));
        peak_blowup = std::max(peak_blowup, doc.number_or("blowup", 0));
        last = std::move(doc);
        ++samples;
    }
    if (samples == 0) {
        std::cerr << path << ": no samples\n";
        return 2;
    }

    // v1 predates the global_bin_* rename; fall back to the old keys.
    const double bin_hits = last.number_or(
        "global_bin_hits", last.number_or("bin_hits", 0.0));
    const double bin_misses = last.number_or(
        "global_bin_misses", last.number_or("bin_misses", 0.0));
    const double bin_lookups = bin_hits + bin_misses;
    const double bad_frees = last.number_or("bad_free_wild", 0.0) +
                             last.number_or("bad_free_foreign", 0.0) +
                             last.number_or("bad_free_interior", 0.0) +
                             last.number_or("bad_free_double", 0.0);

    std::printf("timeline %s: %zu samples%s, %.3f ms span\n",
                path.c_str(), samples, v1_seen ? " (schema v1)" : "",
                (last.number_or("ts", 0.0) -
                 static_cast<double>(first_ts)) /
                    1e6);
    std::printf("  final in_use %.0f, held %.0f, os %.0f, cached %.0f "
                "bytes\n",
                last.number_or("in_use", 0.0),
                last.number_or("held", 0.0), last.number_or("os", 0.0),
                last.number_or("cached", 0.0));
    if (v4_seen) {
        // The v4 footprint split: "os" above is the deprecated alias
        // of committed; reserved and purged complete the picture
        // (committed + purged == held at quiescence).
        std::printf("  final committed %.0f, reserved %.0f, purged "
                    "%.0f bytes\n",
                    last.number_or("committed", 0.0),
                    last.number_or("reserved", 0.0),
                    last.number_or("purged", 0.0));
    }
    std::printf("  peak in_use %.0f, peak held %.0f, peak blowup "
                "%.3f\n",
                peak_in_use, peak_held, peak_blowup);
    std::printf("  allocs %.0f, frees %.0f, transfers %.0f, global "
                "fetches %.0f\n",
                last.number_or("allocs", 0.0),
                last.number_or("frees", 0.0),
                last.number_or("transfers", 0.0),
                last.number_or("global_fetches", 0.0));
    std::printf("  global bin hit rate %.1f%% (%.0f/%.0f)\n",
                bin_lookups > 0.0 ? bin_hits / bin_lookups * 100.0
                                  : 0.0,
                bin_hits, bin_lookups);
    if (v1_seen) {
        std::printf("  bad frees / profiler bytes: not recorded in "
                    "schema v1\n");
    } else {
        std::printf("  bad frees rejected: %.0f\n", bad_frees);
        std::printf("  profiler sampled: %.0f requested / %.0f rounded "
                    "bytes\n",
                    last.number_or("prof_sampled_requested", 0.0),
                    last.number_or("prof_sampled_rounded", 0.0));
    }
    if (v3_seen) {
        // The v3 latency keys mirror obs::LatencyPath; names are part
        // of the schema, so they are spelled out here rather than
        // linking the obs library into the comparer.
        static const char* const kLatPaths[] = {
            "malloc_fast",      "malloc_refill",
            "malloc_global_fetch", "malloc_fresh_map",
            "free_fast",        "free_spill",
            "free_remote_push", "owner_drain"};
        bool any = false;
        for (const char* name : kLatPaths) {
            const double n =
                last.number_or(std::string("lat_") + name + "_n", 0.0);
            if (n <= 0.0)
                continue;
            if (!any)
                std::printf("  latency p99 (cycles):\n");
            any = true;
            std::printf("    %-20s n=%-12.0f p99=%.0f\n", name, n,
                        last.number_or(
                            std::string("lat_") + name + "_p99", 0.0));
        }
        if (!any)
            std::printf("  latency: histograms disarmed (all-zero "
                        "series)\n");
    }
    if (v5_seen && last.number_or("bg_wakeups", 0.0) > 0.0) {
        std::printf("  background: wakeups %.0f, refills %.0f, drains "
                    "%.0f, precommits %.0f, purges %.0f\n",
                    last.number_or("bg_wakeups", 0.0),
                    last.number_or("bg_refills", 0.0),
                    last.number_or("bg_drains", 0.0),
                    last.number_or("bg_precommits", 0.0),
                    last.number_or("bg_purges", 0.0));
    }
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string base_path, next_path, timeline_path;
    double max_regress_pct = 10.0;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--timeline") == 0 && i + 1 < argc) {
            timeline_path = argv[++i];
        } else if (std::strcmp(argv[i], "--max-regress-pct") == 0 &&
                   i + 1 < argc) {
            char* end = nullptr;
            max_regress_pct = std::strtod(argv[++i], &end);
            if (end == argv[i] || max_regress_pct < 0.0) {
                std::cerr << "bench_compare: bad threshold '" << argv[i]
                          << "'\n";
                return 2;
            }
        } else if (std::strcmp(argv[i], "--help") == 0) {
            usage(std::cout);
            return 0;
        } else if (argv[i][0] == '-') {
            std::cerr << "bench_compare: unknown option '" << argv[i]
                      << "'\n";
            usage(std::cerr);
            return 2;
        } else if (base_path.empty()) {
            base_path = argv[i];
        } else if (next_path.empty()) {
            next_path = argv[i];
        } else {
            std::cerr << "bench_compare: too many arguments\n";
            usage(std::cerr);
            return 2;
        }
    }
    if (!timeline_path.empty()) {
        if (!base_path.empty() || !next_path.empty()) {
            std::cerr << "bench_compare: --timeline takes no report "
                         "files\n";
            usage(std::cerr);
            return 2;
        }
        return summarize_timeline(timeline_path);
    }
    if (base_path.empty() || next_path.empty()) {
        usage(std::cerr);
        return 2;
    }

    JsonValue base, next;
    if (!load(base_path, base) || !load(next_path, next))
        return 2;

    CompareResult result =
        hoard::metrics::compare_reports(base, next, max_regress_pct);

    std::printf("%-58s %14s %14s %9s\n", "metric", "base", "next",
                "change");
    for (const MetricDelta& d : result.deltas) {
        std::printf("%-58s %14.4g %14.4g %+8.2f%%%s\n", d.key.c_str(),
                    d.base, d.next, d.change_pct,
                    d.regression ? "  REGRESSION" : "");
    }
    for (const std::string& key : result.missing)
        std::printf("%-58s missing from %s\n", key.c_str(),
                    next_path.c_str());

    std::printf("\n%zu metric(s) compared, %d regression(s) past "
                "%.1f%%, %zu missing\n",
                result.deltas.size(), result.regressions,
                max_regress_pct, result.missing.size());
    return result.ok() ? 0 : 1;
}
