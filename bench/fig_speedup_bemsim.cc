/**
 * @file
 * FIG-bem (DESIGN.md §4): speedup of the BEMengine proxy (phased bulk
 * allocation: large panels via the huge path + many mixed-size
 * elements, assembly writes, scattered frees), 1..14 simulated
 * processors.
 *
 * Paper shape to match: allocation is a smaller fraction of the work
 * than in the micro-benchmarks, so every allocator scales somewhat;
 * Hoard stays on top and the serial allocator still trails visibly.
 */

#include "bench/fig_common.h"
#include "workloads/sim_bodies.h"

int
main(int argc, char** argv)
{
    using namespace hoard;
    bench::FigCli cli = bench::parse_cli(argc, argv);

    workloads::BemSimParams params;
    params.phases = cli.quick ? 1 : 2;
    params.total_panels = 16;  // fixed machine total, round-robin
    params.elements_per_panel = 300;

    bench::emit_figure("FIG-bem: BEM-proxy speedup vs processors",
                       bench::paper_options(cli),
                       workloads::bemsim_body(params), cli);
    return 0;
}
